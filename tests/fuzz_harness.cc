// Implementation of the crash-recovery fuzz harness.  See fuzz_harness.h
// for the invariant catalogue and the determinism contract.
#include "fuzz_harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "archive/archive_server.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/sim.h"
#include "common/trace.h"
#include "dlff/filter.h"
#include "dlfm/server.h"
#include "fsim/file_server.h"
#include "hostdb/host_database.h"

namespace datalinks::fuzz {
namespace {

using hostdb::ColumnSpec;
using sqldb::Pred;
using sqldb::Row;
using sqldb::Value;

constexpr int64_t kWait = 10 * 1000 * 1000;  // daemon-drain budget (micros)

std::string Url(int server, const std::string& file) {
  return "dlfs://srv" + std::to_string(server) + "/" + file;
}

Row MediaRow(int64_t id, const std::string& url) {
  return Row{Value(id), url.empty() ? Value::Null() : Value(url)};
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Seed-derived scenario plan.  Everything random is decided here, up front,
// so the schedule is a pure function of the seed; the worker threads only
// execute pre-generated plans.
// ---------------------------------------------------------------------------

enum class OpKind { kLink, kLinkNull, kUnlink, kRelink, kSelect };

struct OpPlan {
  OpKind kind = OpKind::kSelect;
  int64_t id = 0;    // row id the op targets
  int server = 1;    // kLink/kRelink: file server (1 or 2)
  std::string file;  // kLink/kRelink: pre-created file name
};

struct TxnPlan {
  std::vector<OpPlan> ops;
  bool commit = true;  // false: planned client-side rollback
};

struct SessionPlan {
  std::vector<TxnPlan> txns;
};

struct ArmPlan {
  bool armed = false;
  std::string point;
  FaultInjector::Action action = FaultInjector::Action::kCrash;
  int skip = 0;
  int hits = 1;
  int64_t delay_micros = 0;
  int target = 0;  // 0 = host, 1 = dlfm1, 2 = dlfm2
};

struct ScenarioPlan {
  size_t checkpoint_threshold = 0;  // 0 = engine default
  bool do_backup = false;
  int backup_sleep_ms = 0;
  bool pre_restart_reconcile = false;
  bool reconcile_temp_table = true;
  ArmPlan arm;
  std::vector<SessionPlan> sessions;
  std::vector<std::string> files[2];  // files to pre-create per server
};

ScenarioPlan MakePlan(uint64_t seed) {
  Random rng(seed * 0x9e3779b97f4a7c15ULL + 0xda7a11aaULL);
  ScenarioPlan p;

  // Fail point first: its identity constrains world parameters below.
  const std::vector<std::string> points = failpoints::Registry();
  if (!points.empty() && !rng.Bernoulli(0.15)) {
    ArmPlan& a = p.arm;
    a.armed = true;
    a.point = points[rng.Uniform(points.size())];
    const uint64_t roll = rng.Uniform(100);
    if (roll < 70) {
      a.action = FaultInjector::Action::kCrash;
      a.hits = 1;  // a crash latches; more hits would be moot
    } else if (roll < 85) {
      a.action = FaultInjector::Action::kError;
      a.hits = static_cast<int>(rng.UniformRange(1, 3));
    } else {
      a.action = FaultInjector::Action::kDelay;
      a.delay_micros = rng.UniformRange(500, 3000);
      a.hits = static_cast<int>(rng.UniformRange(1, 3));
    }
    a.skip = static_cast<int>(rng.UniformRange(0, 10));
    // Repeatedly abandoned splits can grow one node past the invariant
    // bound while the process is still alive; a single abandon is the
    // interesting (and legal) case.
    if (a.point == failpoints::kSqldbBtreeSplit) a.hits = 1;
    if (StartsWith(a.point, "host.")) {
      a.target = 0;
    } else if (StartsWith(a.point, "dlfm.")) {
      a.target = 1 + static_cast<int>(rng.Uniform(2));
    } else {  // sqldb.* points live in every process
      a.target = static_cast<int>(rng.Uniform(3));
    }
  }

  if (StartsWith(p.arm.point, "sqldb.checkpoint.") ||
      StartsWith(p.arm.point, "sqldb.page.")) {
    p.checkpoint_threshold = 64;  // make auto-checkpoints (and their
                                  // dirty-page writebacks) constant
  } else if (rng.Bernoulli(0.5)) {
    constexpr size_t kThresholds[] = {256, 1024, 8192};
    p.checkpoint_threshold = kThresholds[rng.Uniform(3)];
  }
  p.do_backup = rng.Bernoulli(0.3);
  p.backup_sleep_ms = static_cast<int>(rng.UniformRange(1, 25));
  p.pre_restart_reconcile = rng.Bernoulli(0.3);
  p.reconcile_temp_table = rng.Bernoulli(0.5);

  const int nsessions = static_cast<int>(rng.UniformRange(2, 4));
  for (int si = 0; si < nsessions; ++si) {
    SessionPlan sp;
    int64_t next_id = 1000 * (si + 1);  // disjoint id ranges per session
    int file_seq = 0;
    // Links from already planned-to-commit txns: the eligible unlink and
    // relink victims, with their current planned URL.
    std::vector<std::pair<int64_t, std::string>> pool;
    const int ntxns = static_cast<int>(rng.UniformRange(3, 8));
    for (int t = 0; t < ntxns; ++t) {
      TxnPlan tp;
      tp.commit = rng.Bernoulli(0.85);
      std::set<int64_t> touched;  // at most one write per id per txn
      std::vector<std::pair<int64_t, std::string>> new_links;
      const int nops = static_cast<int>(rng.UniformRange(1, 4));
      for (int o = 0; o < nops; ++o) {
        OpPlan op;
        const uint64_t kind = rng.Uniform(100);
        if (kind < 40) {
          op.kind = OpKind::kLink;
          op.id = next_id++;
          op.server = 1 + static_cast<int>(rng.Uniform(2));
          op.file = "f" + std::to_string(si) + "_" + std::to_string(file_seq++);
          p.files[op.server - 1].push_back(op.file);
          if (tp.commit) new_links.emplace_back(op.id, Url(op.server, op.file));
          touched.insert(op.id);
        } else if (kind < 50) {
          op.kind = OpKind::kLinkNull;
          op.id = next_id++;
          touched.insert(op.id);
        } else if (kind < 70 && !pool.empty()) {
          const size_t v = rng.Uniform(pool.size());
          if (touched.count(pool[v].first) != 0) {
            op.kind = OpKind::kSelect;
            op.id = pool[v].first;
          } else {
            op.kind = OpKind::kUnlink;
            op.id = pool[v].first;
            touched.insert(op.id);
            if (tp.commit) pool.erase(pool.begin() + static_cast<int64_t>(v));
          }
        } else if (kind < 85 && !pool.empty()) {
          const size_t v = rng.Uniform(pool.size());
          if (touched.count(pool[v].first) != 0) {
            op.kind = OpKind::kSelect;
            op.id = pool[v].first;
          } else {
            op.kind = OpKind::kRelink;
            op.id = pool[v].first;
            op.server = 1 + static_cast<int>(rng.Uniform(2));
            op.file = "f" + std::to_string(si) + "_" + std::to_string(file_seq++);
            p.files[op.server - 1].push_back(op.file);
            touched.insert(op.id);
            if (tp.commit) pool[v].second = Url(op.server, op.file);
          }
        } else {
          op.kind = OpKind::kSelect;
          op.id = pool.empty() ? 1 : pool[rng.Uniform(pool.size())].first;
        }
        tp.ops.push_back(std::move(op));
      }
      pool.insert(pool.end(), new_links.begin(), new_links.end());
      sp.txns.push_back(std::move(tp));
    }
    p.sessions.push_back(std::move(sp));
  }
  return p;
}

/// SimSoak plan: one session, 2–3 small txns, a fault ALWAYS armed with the
/// point cycling deterministically through the registry (seed-indexed) so a
/// soak of N seeds covers every site ~N/|registry| times; Backup() races the
/// workload half the time so the barrier regularly expires against a
/// latched crash, and archive-copy error arms exercise the copy daemon's
/// retry backoff.  Small on purpose: the soak's job is breadth of
/// crash-restart coverage per wall-clock second, not workload depth.
ScenarioPlan MakeSoakPlan(uint64_t seed) {
  Random rng(seed * 0x9e3779b97f4a7c15ULL + 0x50a50a5aULL);
  ScenarioPlan p;
  const std::vector<std::string> points = failpoints::Registry();
  ArmPlan& a = p.arm;
  a.armed = !points.empty();
  if (a.armed) {
    a.point = points[seed % points.size()];
    const uint64_t roll = rng.Uniform(100);
    if (roll < 60) {
      a.action = FaultInjector::Action::kCrash;
      a.hits = 1;
    } else if (roll < 85) {
      a.action = FaultInjector::Action::kError;
      a.hits = static_cast<int>(rng.UniformRange(1, 3));
    } else {
      a.action = FaultInjector::Action::kDelay;
      a.delay_micros = rng.UniformRange(500, 3000);
      a.hits = 1;
    }
    a.skip = static_cast<int>(rng.Uniform(4));
    if (a.point == failpoints::kSqldbBtreeSplit) a.hits = 1;
    if (StartsWith(a.point, "host.")) {
      a.target = 0;
    } else if (StartsWith(a.point, "dlfm.")) {
      a.target = 1 + static_cast<int>(rng.Uniform(2));
    } else {
      a.target = static_cast<int>(rng.Uniform(3));
    }
  }
  p.do_backup = rng.Bernoulli(0.5);
  p.backup_sleep_ms = static_cast<int>(rng.UniformRange(1, 5));
  p.pre_restart_reconcile = false;
  p.reconcile_temp_table = rng.Bernoulli(0.5);

  SessionPlan sp;
  int64_t next_id = 1000;
  int file_seq = 0;
  // Same discipline as MakePlan: at most one write per id per txn, and
  // unlink victims only from links of previously planned-committed txns.
  std::vector<std::pair<int64_t, std::string>> pool;
  const int ntxns = static_cast<int>(rng.UniformRange(2, 4));
  for (int t = 0; t < ntxns; ++t) {
    TxnPlan tp;
    tp.commit = rng.Bernoulli(0.9);
    std::set<int64_t> touched;
    std::vector<std::pair<int64_t, std::string>> new_links;
    const int nops = static_cast<int>(rng.UniformRange(1, 3));
    for (int o = 0; o < nops; ++o) {
      OpPlan op;
      const uint64_t kind = rng.Uniform(100);
      if (kind < 60 || pool.empty()) {
        op.kind = OpKind::kLink;
        op.id = next_id++;
        op.server = 1 + static_cast<int>(rng.Uniform(2));
        op.file = "s" + std::to_string(file_seq++);
        p.files[op.server - 1].push_back(op.file);
        if (tp.commit) new_links.emplace_back(op.id, Url(op.server, op.file));
        touched.insert(op.id);
      } else if (kind < 80 && touched.count(pool.back().first) == 0) {
        op.kind = OpKind::kUnlink;
        op.id = pool.back().first;
        touched.insert(op.id);
        if (tp.commit) pool.pop_back();
      } else {
        op.kind = OpKind::kSelect;
        op.id = pool.back().first;
      }
      tp.ops.push_back(std::move(op));
    }
    pool.insert(pool.end(), new_links.begin(), new_links.end());
    sp.txns.push_back(std::move(tp));
  }
  p.sessions.push_back(std::move(sp));
  return p;
}

// ---------------------------------------------------------------------------
// Expectation model.  Each session tracks only its own (disjoint) row ids;
// the models are merged after the worker threads join.
// ---------------------------------------------------------------------------

struct Expect {
  enum State { kAbsent, kPresent, kUncertain };
  State state = kAbsent;
  std::string url;                // kPresent: clip value ("" = SQL NULL)
  std::set<std::string> allowed;  // kUncertain: plausible clip values
  bool allow_absent = true;       // kUncertain: row may be gone entirely
  int last_txn = -1;              // last session txn seq that wrote the id
};

/// The effectual ops of a txn whose Commit errored; recovery owns the
/// outcome, but whatever it is, it must apply atomically.
struct UncertainTxn {
  int seq = -1;
  std::vector<std::pair<int64_t, std::string>> inserted;               // id, url
  std::vector<std::pair<int64_t, std::string>> deleted;                // id, prior
  std::vector<std::tuple<int64_t, std::string, std::string>> updated;  // id, old, new
};

struct SessionModel {
  std::map<int64_t, Expect> rows;
  std::vector<UncertainTxn> uncertain;
  uint64_t attempted = 0;
  uint64_t committed = 0;
  uint64_t uncertain_txns = 0;
};

// ---------------------------------------------------------------------------
// Case runner: world lifecycle, execution, and the invariant checks.
// ---------------------------------------------------------------------------

class CaseRunner {
 public:
  /// exec == nullptr runs the scenario on real threads; otherwise every
  /// component thread and session worker is a task of that executor and
  /// every component clock is its virtual clock (the runner must then be
  /// invoked from inside SimExecutor::Run).
  explicit CaseRunner(uint64_t seed, sim::Executor* exec = nullptr)
      : CaseRunner(MakePlan(seed), exec) {}

  CaseRunner(ScenarioPlan plan, sim::Executor* exec)
      : plan_(std::move(plan)), exec_(exec) {
    if (exec_ != nullptr) {
      // Non-owning alias: the clock lives inside the executor, which
      // outlives the world (the whole scenario runs inside Run()).
      sim_clock_ = std::shared_ptr<Clock>(std::shared_ptr<Clock>(), exec_->clock());
    }
  }

  FuzzCaseResult Run() {
    if (plan_.arm.armed) {
      result_.armed_point = plan_.arm.point;
      result_.armed_action =
          plan_.arm.action == FaultInjector::Action::kCrash   ? "crash"
          : plan_.arm.action == FaultInjector::Action::kError ? "error"
                                                              : "delay";
      result_.armed_target = plan_.arm.target == 0   ? "host"
                             : plan_.arm.target == 1 ? "dlfm1"
                                                     : "dlfm2";
    } else {
      result_.armed_action = "none";
    }
    result_.did_backup = plan_.do_backup;
    BuildWorld();
    if (errors_.empty()) Baseline();
    if (errors_.empty()) {
      Arm();
      RunSessions();
      CollectFired();
      PreRestartChecks();
      if (RestartAndResolve()) {
        VerifyRecovered();
        VerifyIdempotentReplay();
      }
    }
    return Finish();
  }

 private:
  bool Check(bool cond, const std::string& msg) {
    if (!cond) errors_ += "  - " + msg + "\n";
    return cond;
  }

  // ---- world lifecycle (mirrors the crash-matrix fixture) ----

  void StartDlfm(int idx, std::shared_ptr<sqldb::DurableStore> durable) {
    dlfm::DlfmOptions opts;
    opts.server_name = idx == 1 ? "srv1" : "srv2";
    opts.commit_batch_size = 4;
    opts.checkpoint_threshold_bytes = plan_.checkpoint_threshold;
    // Bound the backup barrier: a Backup() racing a latched crash must not
    // stall the whole scenario.
    opts.ensure_archived_timeout_micros = 1500 * 1000;
    auto inj = std::make_shared<FaultInjector>();
    opts.fault = inj;
    // Same registry / ring across crash-restarts so a failing case's
    // diagnostic snapshot covers the whole scenario, not just the last
    // incarnation.
    opts.metrics = idx == 1 ? reg1_ : reg2_;
    opts.trace = ring_;
    if (exec_ != nullptr) {
      opts.executor = exec_;
      opts.clock = sim_clock_;
    }
    auto& slot = idx == 1 ? dlfm1_ : dlfm2_;
    slot = std::make_unique<dlfm::DlfmServer>(
        opts, idx == 1 ? fs1_.get() : fs2_.get(), archive_.get(), std::move(durable));
    (idx == 1 ? fault1_ : fault2_) = std::move(inj);
    Check(slot->Start().ok(), "dlfm" + std::to_string(idx) + " failed to start");
  }

  void MakeHost(std::shared_ptr<sqldb::DurableStore> durable) {
    hostdb::HostOptions hopts;
    hopts.dbid = 1;
    hopts.synchronous_commit = true;
    hopts.checkpoint_threshold_bytes = plan_.checkpoint_threshold;
    fault_host_ = std::make_shared<FaultInjector>();
    hopts.fault = fault_host_;
    hopts.metrics = reg_host_;
    hopts.trace = ring_;
    if (exec_ != nullptr) {
      hopts.executor = exec_;
      hopts.clock = sim_clock_;
    }
    host_ = std::make_unique<hostdb::HostDatabase>(hopts, std::move(durable));
    host_->RegisterDlfm("srv1", dlfm1_->listener());
    host_->RegisterDlfm("srv2", dlfm2_->listener());
  }

  void BuildWorld() {
    fs1_ = std::make_unique<fsim::FileServer>("srv1");
    fs2_ = std::make_unique<fsim::FileServer>("srv2");
    archive_ = std::make_unique<archive::ArchiveServer>();
    StartDlfm(1, nullptr);
    StartDlfm(2, nullptr);
    if (errors_.empty()) MakeHost(nullptr);
  }

  bool RestartAll() {
    auto hstore = host_->SimulateCrash();
    host_.reset();
    auto s1 = dlfm1_->SimulateCrash();
    dlfm1_.reset();
    auto s2 = dlfm2_->SimulateCrash();
    dlfm2_.reset();
    StartDlfm(1, std::move(s1));
    StartDlfm(2, std::move(s2));
    if (!errors_.empty()) return false;
    MakeHost(std::move(hstore));
    auto media = host_->db()->TableByName("media");
    if (!Check(media.ok(), "media table lost across restart")) return false;
    media_ = *media;
    return true;
  }

  void MakeFile(fsim::FileServer* fs, const std::string& name) {
    Check(fs->CreateFile(name, "alice", 0644, "data:" + name).ok(),
          "CreateFile " + name + " failed");
  }

  void Baseline() {
    auto table = host_->CreateTable(
        "media", {ColumnSpec{"id", sqldb::ValueType::kInt, false, false, {}, false},
                  ColumnSpec{"clip", sqldb::ValueType::kString, true, true,
                             dlfm::AccessControl::kFull, true}});
    if (!Check(table.ok(), "CreateTable media failed")) return;
    media_ = *table;

    all_files_[0] = plan_.files[0];
    all_files_[1] = plan_.files[1];
    all_files_[0].push_back("base_a");
    all_files_[1].push_back("base_b");
    for (const std::string& f : all_files_[0]) MakeFile(fs1_.get(), f);
    for (const std::string& f : all_files_[1]) MakeFile(fs2_.get(), f);
    if (!errors_.empty()) return;

    // Committed, archive-drained baseline so every scenario starts with
    // link state for the daemons and unlink victims for the reconciler.
    auto s = host_->OpenSession();
    const bool ok = s->Begin().ok() &&
                    s->Insert(media_, MediaRow(1, Url(1, "base_a"))).ok() &&
                    s->Insert(media_, MediaRow(2, Url(2, "base_b"))).ok() &&
                    s->Commit().ok();
    if (!Check(ok, "baseline commit failed")) return;
    Check(dlfm1_->WaitArchiveDrained(kWait).ok() &&
              dlfm2_->WaitArchiveDrained(kWait).ok(),
          "baseline archive drain failed");
  }

  void Arm() {
    if (!plan_.arm.armed) return;
    FaultInjector::Spec spec;
    spec.action = plan_.arm.action;
    spec.error = Status::IOError("fuzz injected fault");
    spec.delay_micros = plan_.arm.delay_micros;
    spec.skip = plan_.arm.skip;
    spec.hits = plan_.arm.hits;
    TargetInjector()->Arm(plan_.arm.point, spec);
  }

  FaultInjector* TargetInjector() {
    switch (plan_.arm.target) {
      case 1:
        return fault1_.get();
      case 2:
        return fault2_.get();
      default:
        return fault_host_.get();
    }
  }

  // ---- workload execution ----

  void RunSessions() {
    models_.resize(plan_.sessions.size());
    // Real mode: plain threads and a wall-clock sleep.  Sim mode: the same
    // code spawns sim tasks and sleeps on virtual time — the backup races
    // the sessions under the recorded schedule either way.
    sim::Executor* exec = sim::OrReal(exec_);
    std::vector<sim::TaskHandle> workers;
    workers.reserve(plan_.sessions.size());
    for (size_t si = 0; si < plan_.sessions.size(); ++si) {
      workers.push_back(exec->Spawn("fuzz.session", [this, si] {
        auto s = host_->OpenSession();
        int seq = 0;
        for (const TxnPlan& tp : plan_.sessions[si].txns) {
          RunTxn(s.get(), tp, &models_[si], seq++);
        }
      }));
    }
    if (plan_.do_backup) {
      exec->clock()->SleepForMicros(int64_t{plan_.backup_sleep_ms} * 1000);
      (void)host_->Backup();  // best-effort; may race the armed fault
    }
    for (sim::TaskHandle& w : workers) w.join();
  }

  void RunTxn(hostdb::HostSession* s, const TxnPlan& tp, SessionModel* m, int seq) {
    ++m->attempted;
    if (!s->Begin().ok()) return;
    std::vector<std::pair<int64_t, std::string>> ins;            // id, url
    std::vector<std::pair<int64_t, int64_t>> del;                // id, match count
    std::vector<std::tuple<int64_t, std::string, int64_t>> upd;  // id, url, count
    bool failed = false;
    for (const OpPlan& op : tp.ops) {
      switch (op.kind) {
        case OpKind::kLink: {
          const std::string url = Url(op.server, op.file);
          if (s->Insert(media_, MediaRow(op.id, url)).ok()) {
            ins.emplace_back(op.id, url);
          } else {
            failed = true;
          }
          break;
        }
        case OpKind::kLinkNull:
          if (s->Insert(media_, MediaRow(op.id, "")).ok()) {
            ins.emplace_back(op.id, std::string());
          } else {
            failed = true;
          }
          break;
        case OpKind::kUnlink: {
          auto n = s->Delete(media_, {Pred::Eq("id", op.id)});
          if (n.ok()) {
            del.emplace_back(op.id, *n);
          } else {
            failed = true;
          }
          break;
        }
        case OpKind::kRelink: {
          const std::string url = Url(op.server, op.file);
          auto n = s->Update(media_, {Pred::Eq("id", op.id)},
                             {sqldb::Assignment{"clip", sqldb::Operand(url)}});
          if (n.ok()) {
            upd.emplace_back(op.id, url, *n);
          } else {
            failed = true;
          }
          break;
        }
        case OpKind::kSelect:
          (void)s->Select(media_, {Pred::Eq("id", op.id)});  // reads tolerated
          break;
      }
      if (failed) break;
    }
    if (failed || !tp.commit) {
      (void)s->Rollback();
      // The transaction never reached Commit: definitively aborted.  Fresh
      // inserts can never materialize; deletes/updates roll back, so the
      // prior expectations stand.
      for (const auto& [id, url] : ins) {
        Expect& e = m->rows[id];
        e = Expect{};
        e.state = Expect::kAbsent;
        e.last_txn = seq;
      }
      return;
    }
    const Status c = s->Commit();
    if (c.ok()) {
      ++m->committed;
      for (const auto& [id, url] : ins) {
        Expect& e = m->rows[id];
        e = Expect{};
        e.state = Expect::kPresent;
        e.url = url;
        e.last_txn = seq;
      }
      for (const auto& [id, count] : del) {
        Expect& e = m->rows[id];
        if (count >= 1 || e.state == Expect::kUncertain) {
          e = Expect{};
          e.state = Expect::kAbsent;
        }
        // count == 0 on a definitely-present row: leave the expectation in
        // place — the final row check will flag the lost row.
        e.last_txn = seq;
      }
      for (const auto& [id, url, count] : upd) {
        Expect& e = m->rows[id];
        if (count >= 1) {
          e = Expect{};
          e.state = Expect::kPresent;
          e.url = url;
        } else if (e.state == Expect::kUncertain) {
          // The uncertain insert can't have committed: the row was not
          // visible to this (committed) update.
          e = Expect{};
          e.state = Expect::kAbsent;
        }
        e.last_txn = seq;
      }
      return;
    }
    // Commit errored: recovery owns the outcome.
    ++m->uncertain_txns;
    UncertainTxn ut;
    ut.seq = seq;
    for (const auto& [id, url] : ins) {
      Expect& e = m->rows[id];
      e = Expect{};
      e.state = Expect::kUncertain;
      e.allowed = {url};
      e.allow_absent = true;
      e.last_txn = seq;
      ut.inserted.emplace_back(id, url);
    }
    for (const auto& [id, count] : del) {
      Expect& e = m->rows[id];
      if (e.state == Expect::kPresent) {
        const std::string prior = e.url;
        if (count >= 1) ut.deleted.emplace_back(id, prior);
        e = Expect{};
        e.state = Expect::kUncertain;
        e.allowed = {prior};
        e.allow_absent = true;
      } else if (e.state == Expect::kUncertain) {
        if (count == 0) {
          // The earlier uncertain insert did not commit (its row was not
          // visible), so whatever this txn did, the id stays absent.
          e = Expect{};
          e.state = Expect::kAbsent;
        } else {
          e.allow_absent = true;
        }
      }
      e.last_txn = seq;
    }
    for (const auto& [id, url, count] : upd) {
      Expect& e = m->rows[id];
      if (e.state == Expect::kPresent) {
        const std::string prior = e.url;
        const bool effectual = count >= 1;
        if (effectual) ut.updated.emplace_back(id, prior, url);
        e = Expect{};
        e.state = Expect::kUncertain;
        e.allowed = {prior, url};
        e.allow_absent = !effectual;
      } else if (e.state == Expect::kUncertain) {
        e.allowed.insert(url);
        if (count >= 1) e.allow_absent = false;  // the insert did commit
      }
      e.last_txn = seq;
    }
    if (!ut.inserted.empty() || !ut.deleted.empty() || !ut.updated.empty()) {
      m->uncertain.push_back(std::move(ut));
    }
  }

  void CollectFired() {
    result_.crashed = fault_host_->crashed() || fault1_->crashed() || fault2_->crashed();
    if (!plan_.arm.armed) return;
    FaultInjector* inj = TargetInjector();
    if (plan_.arm.action == FaultInjector::Action::kCrash) {
      result_.fired = inj->crashed();
    } else {
      result_.fired =
          inj->HitCount(plan_.arm.point) > static_cast<uint64_t>(plan_.arm.skip);
    }
  }

  // With every process alive and phase 2 fully delivered, the world must
  // already be consistent — run the reconciler as an extra invariant probe
  // before tearing everything down.
  void PreRestartChecks() {
    if (!plan_.pre_restart_reconcile || result_.crashed) return;
    auto pending = host_->PendingDecisions();
    if (!pending.ok() || !pending->empty()) return;  // phase 2 still owed
    auto rep = host_->Reconcile(media_, plan_.reconcile_temp_table);
    if (!rep.ok()) return;  // lock timeouts vs daemons are tolerated
    Check(rep->cleared_urls.empty(),
          "pre-restart reconcile cleared a live url: " +
              (rep->cleared_urls.empty() ? "" : rep->cleared_urls[0]));
    Check(rep->dlfm_unlinked.empty(),
          "pre-restart reconcile unlinked a live file: " +
              (rep->dlfm_unlinked.empty() ? "" : rep->dlfm_unlinked[0]));
  }

  bool RestartAndResolve() {
    if (!RestartAll()) return false;
    if (!Check(host_->ResolveIndoubts().ok(), "ResolveIndoubts failed")) return false;
    const bool drained = dlfm1_->WaitGroupWorkDrained(kWait).ok() &&
                         dlfm2_->WaitGroupWorkDrained(kWait).ok() &&
                         dlfm1_->WaitArchiveDrained(kWait).ok() &&
                         dlfm2_->WaitArchiveDrained(kWait).ok();
    return Check(drained, "post-recovery daemon drain failed");
  }

  // ---- verification ----

  std::optional<std::map<int64_t, std::string>> SelectAll() {
    auto s = host_->OpenSession();
    if (!Check(s->Begin().ok(), "post-recovery Begin failed")) return std::nullopt;
    auto rows = s->Select(media_, {});
    if (!Check(rows.ok(), "post-recovery Select failed: " + rows.status().ToString())) {
      (void)s->Rollback();
      return std::nullopt;
    }
    if (!Check(s->Commit().ok(), "post-recovery read Commit failed")) {
      return std::nullopt;
    }
    std::map<int64_t, std::string> out;
    for (const Row& r : *rows) {
      const int64_t id = r[0].as_int();
      Check(out.count(id) == 0, "duplicate row id " + std::to_string(id));
      out[id] = r[1].is_null() ? "" : r[1].as_string();
    }
    return out;
  }

  std::optional<std::vector<std::string>> LinkedNames(dlfm::DlfmServer* d,
                                                      const std::string& who) {
    auto* db = d->local_db();
    auto* t = db->Begin();
    auto linked = d->repo().AllInState(t, "L");
    const bool committed = db->Commit(t).ok();
    if (!Check(linked.ok() && committed, "File-table scan failed at " + who)) {
      return std::nullopt;
    }
    std::vector<std::string> names;
    names.reserve(linked->size());
    for (const dlfm::FileEntry& e : *linked) names.push_back(e.name);
    std::sort(names.begin(), names.end());
    return names;
  }

  /// Merge the per-session models plus the baseline into one id->Expect
  /// map; ids of planned-but-never-executed inserts default to absent.
  std::map<int64_t, Expect> MergedModel() {
    std::map<int64_t, Expect> global;
    Expect base;
    base.state = Expect::kPresent;
    base.url = Url(1, "base_a");
    global[1] = base;
    base.url = Url(2, "base_b");
    global[2] = base;
    for (const SessionModel& m : models_) {
      for (const auto& [id, e] : m.rows) global[id] = e;
    }
    for (const SessionPlan& sp : plan_.sessions) {
      for (const TxnPlan& tp : sp.txns) {
        for (const OpPlan& op : tp.ops) {
          if (op.kind != OpKind::kLink && op.kind != OpKind::kLinkNull) continue;
          if (global.count(op.id) == 0) global[op.id] = Expect{};
        }
      }
    }
    return global;
  }

  void CheckRowExpectations(const std::map<int64_t, Expect>& model,
                            const std::map<int64_t, std::string>& actual) {
    for (const auto& [id, e] : model) {
      const auto it = actual.find(id);
      const std::string tag = "row " + std::to_string(id);
      switch (e.state) {
        case Expect::kAbsent:
          Check(it == actual.end(), tag + " should be absent (aborted/deleted)");
          break;
        case Expect::kPresent:
          if (Check(it != actual.end(), tag + " lost (committed but missing)")) {
            Check(it->second == e.url,
                  tag + " clip mismatch: got '" + it->second + "' want '" + e.url + "'");
          }
          break;
        case Expect::kUncertain:
          if (it == actual.end()) {
            Check(e.allow_absent, tag + " vanished but absence was ruled out");
          } else {
            Check(e.allowed.count(it->second) != 0,
                  tag + " clip '" + it->second + "' matches no plausible outcome");
          }
          break;
      }
    }
    for (const auto& [id, url] : actual) {
      Check(model.count(id) != 0, "phantom row " + std::to_string(id));
    }
  }

  /// Atomicity of a txn whose Commit errored: derive the commit verdict
  /// from the first decisive effect, then require every other effect to
  /// agree.  Effects overwritten by a later txn of the same session are
  /// not decisive and are skipped.
  void CheckUncertainAtomicity(const SessionModel& m,
                               const std::map<int64_t, std::string>& actual) {
    for (const UncertainTxn& ut : m.uncertain) {
      const auto live = [&](int64_t id) {
        const auto it = m.rows.find(id);
        return it != m.rows.end() && it->second.last_txn == ut.seq;
      };
      std::optional<bool> committed;
      for (const auto& [id, url] : ut.inserted) {
        if (live(id)) {
          committed = actual.count(id) != 0;
          break;
        }
      }
      if (!committed) {
        for (const auto& [id, prior] : ut.deleted) {
          if (live(id)) {
            committed = actual.count(id) == 0;
            break;
          }
        }
      }
      if (!committed) {
        for (const auto& [id, old_url, new_url] : ut.updated) {
          if (!live(id)) continue;
          const auto it = actual.find(id);
          if (it != actual.end()) committed = it->second == new_url;
          break;
        }
      }
      if (!committed) continue;  // fully overwritten by later txns
      const std::string tag =
          "uncertain txn seq " + std::to_string(ut.seq) +
          (*committed ? " (resolved committed)" : " (resolved aborted)");
      for (const auto& [id, url] : ut.inserted) {
        if (!live(id)) continue;
        const auto it = actual.find(id);
        if (*committed) {
          if (Check(it != actual.end(), tag + ": insert " + std::to_string(id) +
                                            " missing — partial commit")) {
            Check(it->second == url, tag + ": insert " + std::to_string(id) +
                                         " has wrong clip '" + it->second + "'");
          }
        } else {
          Check(it == actual.end(), tag + ": insert " + std::to_string(id) +
                                        " present — partial abort");
        }
      }
      for (const auto& [id, prior] : ut.deleted) {
        if (!live(id)) continue;
        const auto it = actual.find(id);
        if (*committed) {
          Check(it == actual.end(), tag + ": delete " + std::to_string(id) +
                                        " row survived — partial commit");
        } else if (Check(it != actual.end(), tag + ": delete " + std::to_string(id) +
                                                 " row gone — partial abort")) {
          Check(it->second == prior,
                tag + ": row " + std::to_string(id) + " clip changed under abort");
        }
      }
      for (const auto& [id, old_url, new_url] : ut.updated) {
        if (!live(id)) continue;
        const auto it = actual.find(id);
        if (Check(it != actual.end(),
                  tag + ": updated row " + std::to_string(id) + " vanished")) {
          const std::string& want = *committed ? new_url : old_url;
          Check(it->second == want, tag + ": row " + std::to_string(id) +
                                        " clip '" + it->second + "' want '" + want + "'");
        }
      }
    }
  }

  void CheckOwnership(const std::map<int64_t, std::string>& actual) {
    std::set<std::string> linked[2];
    for (const auto& [id, url] : actual) {
      if (url.empty() || !StartsWith(url, "dlfs://")) continue;
      const size_t slash = url.find('/', 7);
      if (slash == std::string::npos) continue;
      const std::string srv = url.substr(7, slash - 7);
      linked[srv == "srv1" ? 0 : 1].insert(url.substr(slash + 1));
    }
    for (int i = 0; i < 2; ++i) {
      dlfm::DlfmServer* d = i == 0 ? dlfm1_.get() : dlfm2_.get();
      fsim::FileServer* fs = i == 0 ? fs1_.get() : fs2_.get();
      const std::string srv = i == 0 ? "srv1" : "srv2";
      for (const std::string& file : all_files_[i]) {
        const bool want = linked[i].count(file) != 0;
        Check(d->UpcallIsLinked(file) == want,
              "I5 " + srv + "/" + file + " link state should be " +
                  (want ? "linked" : "unlinked"));
        auto st = fs->Stat(file);
        if (!Check(st.ok(), "I5 stat failed for " + srv + "/" + file)) continue;
        const std::string owner = want ? std::string(dlff::kDlfmAdminUser) : "alice";
        Check(st->owner == owner, "I5 " + srv + "/" + file + " owner '" + st->owner +
                                      "' want '" + owner + "'");
      }
    }
  }

  void CheckArchiveCopies(dlfm::DlfmServer* server, const std::string& name) {
    auto* db = server->local_db();
    auto* t = db->Begin();
    auto entries = server->repo().AllInState(t, "L");
    (void)db->Commit(t);
    if (!Check(entries.ok(), "I4 File-table scan failed at " + name)) return;
    for (const dlfm::FileEntry& e : *entries) {
      if (e.check_flag != 0 || !e.recovery_option) continue;
      Check(archive_->Has(archive::ArchiveKey{name, e.name, e.recovery_id}),
            "I4 missing archive copy " + name + "/" + e.name);
    }
  }

  void CheckIntegrityAll(const char* when) {
    Check(host_->db()->CheckIntegrity().ok(),
          std::string("I7 host CheckIntegrity failed ") + when);
    Check(dlfm1_->local_db()->CheckIntegrity().ok(),
          std::string("I7 dlfm1 CheckIntegrity failed ") + when);
    Check(dlfm2_->local_db()->CheckIntegrity().ok(),
          std::string("I7 dlfm2 CheckIntegrity failed ") + when);
  }

  void VerifyRecovered() {
    // I1: indoubt resolution terminated at every DLFM.
    auto in1 = dlfm1_->ListIndoubt();
    auto in2 = dlfm2_->ListIndoubt();
    Check(in1.ok() && in1->empty(), "I1 dlfm1 still has indoubt transactions");
    Check(in2.ok() && in2->empty(), "I1 dlfm2 still has indoubt transactions");
    // I2: no decision record left behind.
    auto pending = host_->PendingDecisions();
    Check(pending.ok() && pending->empty(), "I2 durable decision records remain");
    // I3: host references == DLFM File tables.
    auto rep = host_->Reconcile(media_, plan_.reconcile_temp_table);
    if (Check(rep.ok(), "I3 reconcile failed: " + rep.status().ToString())) {
      Check(rep->cleared_urls.empty(),
            "I3 dangling host reference: " +
                (rep->cleared_urls.empty() ? "" : rep->cleared_urls[0]));
      Check(rep->dlfm_unlinked.empty(),
            "I3 orphan DLFM link: " +
                (rep->dlfm_unlinked.empty() ? "" : rep->dlfm_unlinked[0]));
    }

    auto actual = SelectAll();
    if (!actual) return;
    const std::map<int64_t, Expect> model = MergedModel();
    CheckRowExpectations(model, *actual);
    for (const SessionModel& m : models_) CheckUncertainAtomicity(m, *actual);
    CheckOwnership(*actual);
    // I4: every linked recovery-enabled file has its archive copy.
    CheckArchiveCopies(dlfm1_.get(), "srv1");
    CheckArchiveCopies(dlfm2_.get(), "srv2");
    // I7: engine-level physical consistency.
    CheckIntegrityAll("after recovery");
  }

  /// I6: crash-restart a second time with no intervening work; WAL replay
  /// must be idempotent, i.e. the observable state must not change.
  void VerifyIdempotentReplay() {
    auto rows_a = SelectAll();
    auto l1a = LinkedNames(dlfm1_.get(), "srv1");
    auto l2a = LinkedNames(dlfm2_.get(), "srv2");
    if (!rows_a || !l1a || !l2a) return;
    if (!RestartAll()) return;
    auto rows_b = SelectAll();
    auto l1b = LinkedNames(dlfm1_.get(), "srv1");
    auto l2b = LinkedNames(dlfm2_.get(), "srv2");
    if (!rows_b || !l1b || !l2b) return;
    Check(*rows_a == *rows_b, "I6 media rows changed across a pure replay");
    Check(*l1a == *l1b, "I6 dlfm1 linked set changed across a pure replay");
    Check(*l2a == *l2b, "I6 dlfm2 linked set changed across a pure replay");
    Check(host_->ResolveIndoubts().ok(), "I6 ResolveIndoubts failed after replay");
    Check(dlfm1_->WaitGroupWorkDrained(kWait).ok() &&
              dlfm2_->WaitGroupWorkDrained(kWait).ok(),
          "I6 drain failed after replay");
    CheckIntegrityAll("after second replay");
  }

  FuzzCaseResult Finish() {
    for (const SessionModel& m : models_) {
      result_.txns_attempted += m.attempted;
      result_.txns_committed += m.committed;
      result_.txns_uncertain += m.uncertain_txns;
    }
    result_.ok = errors_.empty();
    result_.detail = errors_;
    if (!result_.ok && ring_->dropped() > 0) {
      // A lossy ring means the archived trace is missing the oldest spans;
      // flag it so nobody debugs the failure assuming a complete timeline.
      result_.detail += "note: trace ring dropped " +
                        std::to_string(ring_->dropped()) +
                        " spans; dump is incomplete\n";
    }
    if (!result_.ok) {
      // Diagnostic snapshots ride along with the failing seed so CI can
      // archive them without re-running the scenario.
      result_.metrics_json = "{\"host\":" + reg_host_->DumpJson() +
                             ",\"dlfm1\":" + reg1_->DumpJson() +
                             ",\"dlfm2\":" + reg2_->DumpJson() + "}";
    }
    if (!result_.ok || exec_ != nullptr) {
      // Sim mode always captures the trace: byte-identical dumps across
      // same-seed runs are the determinism criterion.
      result_.trace_json = ring_->DumpJson();
    }
    host_.reset();
    if (dlfm1_) dlfm1_->Stop();
    if (dlfm2_) dlfm2_->Stop();
    return result_;
  }

  ScenarioPlan plan_;
  sim::Executor* exec_ = nullptr;     // null = real threads
  std::shared_ptr<Clock> sim_clock_;  // aliases exec_->clock() in sim mode
  FuzzCaseResult result_;
  std::string errors_;

  // Per-case observability surfaces: private (not the process-global
  // defaults) so concurrent/sequential cases never mix their spans.
  std::shared_ptr<metrics::Registry> reg_host_ = std::make_shared<metrics::Registry>();
  std::shared_ptr<metrics::Registry> reg1_ = std::make_shared<metrics::Registry>();
  std::shared_ptr<metrics::Registry> reg2_ = std::make_shared<metrics::Registry>();
  std::shared_ptr<trace::TraceRing> ring_ = std::make_shared<trace::TraceRing>();

  std::unique_ptr<fsim::FileServer> fs1_, fs2_;
  std::unique_ptr<archive::ArchiveServer> archive_;
  std::unique_ptr<dlfm::DlfmServer> dlfm1_, dlfm2_;
  std::shared_ptr<FaultInjector> fault1_, fault2_, fault_host_;
  std::unique_ptr<hostdb::HostDatabase> host_;
  sqldb::TableId media_ = 0;
  std::vector<std::string> all_files_[2];
  std::vector<SessionModel> models_;
};

FuzzCaseResult RunSim(uint64_t seed, const std::vector<uint32_t>* replay,
                      bool soak = false) {
  sim::SimExecutor exec(seed);
  if (replay != nullptr) exec.SetReplay(*replay);
  // Byte-identical trace dumps need the process-wide id mint rewound to
  // the same point for every scenario.
  trace::ResetNextTraceIdForTest();
  trace::ResetNextSpanIdForTest();
  FuzzCaseResult result;
  exec.Run([&] {
    result = CaseRunner(soak ? MakeSoakPlan(seed) : MakePlan(seed), &exec).Run();
  });
  result.sim = true;
  result.schedule = exec.decisions();
  result.replay_diverged = exec.replay_diverged();
  return result;
}

}  // namespace

FuzzCaseResult RunCrashFuzzCase(uint64_t seed) { return CaseRunner(seed).Run(); }

FuzzCaseResult RunCrashFuzzCaseSim(uint64_t seed) { return RunSim(seed, nullptr); }

FuzzCaseResult ReplayCrashFuzzCaseSim(uint64_t seed,
                                      const std::vector<uint32_t>& schedule) {
  return RunSim(seed, &schedule);
}

FuzzCaseResult RunCrashSoakCaseSim(uint64_t seed) {
  return RunSim(seed, nullptr, /*soak=*/true);
}

FuzzCaseResult RunCrashSoakCase(uint64_t seed) {
  return CaseRunner(MakeSoakPlan(seed), nullptr).Run();
}

std::string EncodeScheduleArtifact(uint64_t seed, const FuzzCaseResult& result) {
  std::ostringstream out;
  out << "dlx-fuzz-schedule v1\n";
  out << "seed " << seed << '\n';
  out << "verdict " << (result.ok ? "pass" : "fail") << '\n';
  out << "decisions " << result.schedule.size() << '\n';
  for (size_t i = 0; i < result.schedule.size(); ++i) {
    out << result.schedule[i];
    out << ((i + 1) % 16 == 0 || i + 1 == result.schedule.size() ? '\n' : ' ');
  }
  return out.str();
}

bool DecodeScheduleArtifact(const std::string& text, uint64_t* seed,
                            std::vector<uint32_t>* schedule, std::string* verdict) {
  std::istringstream in(text);
  std::string magic, version, key, v;
  if (!(in >> magic >> version) || magic != "dlx-fuzz-schedule" || version != "v1") {
    return false;
  }
  if (!(in >> key >> *seed) || key != "seed") return false;
  if (!(in >> key >> v) || key != "verdict" || (v != "pass" && v != "fail")) {
    return false;
  }
  if (verdict != nullptr) *verdict = v;
  uint64_t count = 0;
  if (!(in >> key >> count) || key != "decisions") return false;
  schedule->clear();
  schedule->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t d = 0;
    if (!(in >> d)) return false;
    schedule->push_back(d);
  }
  return true;
}

}  // namespace datalinks::fuzz
