// DLFM core semantics: link/unlink transactionality, delayed-update
// compensation, 2PC states, daemons, backup/restore, reconcile.
#include <gtest/gtest.h>

#include <optional>

#include "archive/archive_server.h"
#include "dlff/filter.h"
#include "dlfm/server.h"
#include "fsim/file_server.h"

namespace datalinks::dlfm {
namespace {

class DlfmTest : public ::testing::Test {
 protected:
  void SetUp() override { NewServer(); }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  void NewServer(std::shared_ptr<sqldb::DurableStore> durable = {}) {
    if (server_) server_->Stop();
    DlfmOptions opts;
    opts.server_name = "srv1";
    opts.commit_batch_size = 5;
    opts.group_lifetime_micros = 0;
    server_ = std::make_unique<DlfmServer>(opts, &fs_, &archive_, std::move(durable));
    ASSERT_TRUE(server_->Start().ok());
  }

  void MakeFile(const std::string& name, const std::string& content = "data",
                const std::string& owner = "alice") {
    ASSERT_TRUE(fs_.CreateFile(name, owner, 0644, content).ok());
  }

  DlfmRequest LinkReq(GlobalTxnId txn, const std::string& name, int64_t rec,
                      AccessControl access = AccessControl::kFull, bool recovery = true,
                      int64_t group = 1) {
    DlfmRequest r;
    r.api = DlfmApi::kLinkFile;
    r.txn = txn;
    r.filename = name;
    r.recovery_id = rec;
    r.group_id = group;
    r.access = access;
    r.recovery_option = recovery;
    return r;
  }

  DlfmRequest UnlinkReq(GlobalTxnId txn, const std::string& name, int64_t rec) {
    DlfmRequest r;
    r.api = DlfmApi::kUnlinkFile;
    r.txn = txn;
    r.filename = name;
    r.recovery_id = rec;
    return r;
  }

  int64_t NextRec() { return RecoveryId::Make(1, seq_++); }

  // Full happy-path link+commit of one file.
  void LinkAndCommit(GlobalTxnId txn, const std::string& name, int64_t rec,
                     AccessControl access = AccessControl::kFull, bool recovery = true) {
    ASSERT_TRUE(server_->ApiBegin(txn).ok());
    ASSERT_TRUE(server_->ApiLink(txn, LinkReq(txn, name, rec, access, recovery)).ok());
    ASSERT_TRUE(server_->ApiPrepare(txn).ok());
    ASSERT_TRUE(server_->ApiCommit(txn).ok());
  }

  fsim::FileServer fs_{"srv1"};
  archive::ArchiveServer archive_;
  std::unique_ptr<DlfmServer> server_;
  uint64_t seq_ = 1;
  GlobalTxnId next_txn_ = 100;
};

TEST_F(DlfmTest, LinkCommitTakesOverFullControlFile) {
  MakeFile("video.mpg");
  const int64_t rec = NextRec();
  LinkAndCommit(1, "video.mpg", rec);

  // Linked: owned by the DLFM admin user, read-only.
  auto info = fs_.Stat("video.mpg");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->owner, dlff::kDlfmAdminUser);
  EXPECT_EQ(info->mode & 0222u, 0u);
  EXPECT_TRUE(server_->UpcallIsLinked("video.mpg"));

  // Recovery option: the Copy daemon archives the file asynchronously.
  ASSERT_TRUE(server_->WaitArchiveDrained(3 * 1000 * 1000).ok());
  EXPECT_TRUE(archive_.Has(archive::ArchiveKey{"srv1", "video.mpg", rec}));
}

TEST_F(DlfmTest, LinkWithoutTakeoverForNoneAccess) {
  MakeFile("doc.txt");
  LinkAndCommit(1, "doc.txt", NextRec(), AccessControl::kNone, /*recovery=*/false);
  EXPECT_EQ(fs_.Stat("doc.txt")->owner, "alice");
  EXPECT_TRUE(server_->UpcallIsLinked("doc.txt"));
  // No recovery option: nothing archived.
  ASSERT_TRUE(server_->WaitArchiveDrained(1000 * 1000).ok());
  EXPECT_FALSE(archive_.Has(archive::ArchiveKey{"srv1", "doc.txt", 0}));
}

TEST_F(DlfmTest, LinkMissingFileFails) {
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  Status st = server_->ApiLink(1, LinkReq(1, "nope", NextRec()));
  EXPECT_TRUE(st.IsNotFound());
  ASSERT_TRUE(server_->ApiAbort(1).ok());
}

TEST_F(DlfmTest, AbortBeforePrepareUndoesLink) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  ASSERT_TRUE(server_->ApiLink(1, LinkReq(1, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiAbort(1).ok());
  EXPECT_FALSE(server_->UpcallIsLinked("f"));
  EXPECT_EQ(fs_.Stat("f")->owner, "alice");  // never taken over
}

TEST_F(DlfmTest, AbortAfterPrepareCompensatesLink) {
  // The paper's headline trick: the link was already committed in the local
  // database at prepare time; abort in phase 2 compensates.
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  ASSERT_TRUE(server_->ApiLink(1, LinkReq(1, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(1).ok());
  ASSERT_TRUE(server_->ApiAbort(1).ok());
  EXPECT_FALSE(server_->UpcallIsLinked("f"));
  EXPECT_TRUE(server_->ListIndoubt()->empty());
}

TEST_F(DlfmTest, UnlinkCommitReleasesFile) {
  MakeFile("f");
  const int64_t rec = NextRec();
  LinkAndCommit(1, "f", rec);
  ASSERT_EQ(fs_.Stat("f")->owner, dlff::kDlfmAdminUser);

  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiUnlink(2, UnlinkReq(2, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiCommit(2).ok());

  EXPECT_FALSE(server_->UpcallIsLinked("f"));
  auto info = fs_.Stat("f");
  EXPECT_EQ(info->owner, "alice");          // original owner restored
  EXPECT_NE(info->mode & 0200u, 0u);        // writable again
}

TEST_F(DlfmTest, AbortAfterPrepareRestoresUnlinkedEntry) {
  MakeFile("f");
  LinkAndCommit(1, "f", NextRec());

  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiUnlink(2, UnlinkReq(2, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  // Outcome: abort.  The unlinked entry must be restored to linked state
  // ("change these records back to normal state from the deleted state").
  ASSERT_TRUE(server_->ApiAbort(2).ok());
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, LinkAndUnlinkSameTransactionAbortIsNetZero) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(3).ok());
  ASSERT_TRUE(server_->ApiLink(3, LinkReq(3, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiUnlink(3, UnlinkReq(3, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(3).ok());
  ASSERT_TRUE(server_->ApiAbort(3).ok());
  EXPECT_FALSE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, UnlinkThenRelinkSameTransaction) {
  // §3.2: "unlink of a file from one datalink column and link of the same
  // file to another datalink column within the same transaction ... an
  // important customer requirement."
  MakeFile("f");
  LinkAndCommit(1, "f", NextRec());
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiUnlink(2, UnlinkReq(2, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiLink(2, LinkReq(2, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiCommit(2).ok());
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, UnlinkThenRelinkSameTransactionAbort) {
  MakeFile("f");
  LinkAndCommit(1, "f", NextRec());
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiUnlink(2, UnlinkReq(2, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiLink(2, LinkReq(2, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiAbort(2).ok());
  // Back to the original linked state (old entry restored, new one gone).
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, InBackoutLinkDeletesPendingEntry) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  ASSERT_TRUE(server_->ApiLink(1, LinkReq(1, "f", NextRec())).ok());
  // Savepoint rollback at the host: undo the link, transaction continues.
  DlfmRequest backout = LinkReq(1, "f", 0);
  backout.in_backout = true;
  ASSERT_TRUE(server_->ApiLink(1, backout).ok());
  // The same transaction can re-link and commit.
  ASSERT_TRUE(server_->ApiLink(1, LinkReq(1, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(1).ok());
  ASSERT_TRUE(server_->ApiCommit(1).ok());
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, InBackoutUnlinkRestoresEntry) {
  MakeFile("f");
  LinkAndCommit(1, "f", NextRec());
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  const int64_t urec = NextRec();
  ASSERT_TRUE(server_->ApiUnlink(2, UnlinkReq(2, "f", urec)).ok());
  DlfmRequest backout = UnlinkReq(2, "f", urec);
  backout.in_backout = true;
  ASSERT_TRUE(server_->ApiUnlink(2, backout).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiCommit(2).ok());
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, DoubleLinkRejected) {
  MakeFile("f");
  LinkAndCommit(1, "f", NextRec());
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  Status st = server_->ApiLink(2, LinkReq(2, "f", NextRec()));
  EXPECT_TRUE(st.IsAlreadyExists()) << st.ToString();
  ASSERT_TRUE(server_->ApiAbort(2).ok());
}

TEST_F(DlfmTest, CommitIsIdempotent) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  ASSERT_TRUE(server_->ApiLink(1, LinkReq(1, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(1).ok());
  ASSERT_TRUE(server_->ApiCommit(1).ok());
  // Redelivery of phase 2 after a lost ack must succeed quietly.
  EXPECT_TRUE(server_->ApiCommit(1).ok());
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, IndoubtAfterCrashResolvedByCommit) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(7).ok());
  ASSERT_TRUE(server_->ApiLink(7, LinkReq(7, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(7).ok());

  auto durable = server_->SimulateCrash();
  server_.reset();
  NewServer(durable);

  auto indoubt = server_->ListIndoubt();
  ASSERT_TRUE(indoubt.ok());
  ASSERT_EQ(indoubt->size(), 1u);
  EXPECT_EQ((*indoubt)[0], 7u);
  // The entry is hardened but the commit has not happened: still linked in
  // metadata (visible), awaiting the coordinator's outcome.
  ASSERT_TRUE(server_->ApiCommit(7).ok());
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
  EXPECT_TRUE(server_->ListIndoubt()->empty());
}

TEST_F(DlfmTest, IndoubtAfterCrashResolvedByAbort) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(8).ok());
  ASSERT_TRUE(server_->ApiLink(8, LinkReq(8, "f", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(8).ok());

  auto durable = server_->SimulateCrash();
  server_.reset();
  NewServer(durable);

  ASSERT_TRUE(server_->ApiAbort(8).ok());
  EXPECT_FALSE(server_->UpcallIsLinked("f"));
  EXPECT_TRUE(server_->ListIndoubt()->empty());
}

TEST_F(DlfmTest, UncommittedWorkLostOnCrash) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(9).ok());
  ASSERT_TRUE(server_->ApiLink(9, LinkReq(9, "f", NextRec())).ok());
  // No prepare: local transaction never committed.
  auto durable = server_->SimulateCrash();
  server_.reset();
  NewServer(durable);
  EXPECT_FALSE(server_->UpcallIsLinked("f"));
  EXPECT_TRUE(server_->ListIndoubt()->empty());
}

TEST_F(DlfmTest, DeleteGroupDaemonUnlinksAsync) {
  constexpr int kFiles = 12;
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "g/f" + std::to_string(i);
    MakeFile(name);
    ASSERT_TRUE(
        server_->ApiLink(1, LinkReq(1, name, NextRec(), AccessControl::kFull, true, 42))
            .ok());
  }
  ASSERT_TRUE(server_->ApiPrepare(1).ok());
  ASSERT_TRUE(server_->ApiCommit(1).ok());

  // Drop the group (the host dropped the SQL table).
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiDeleteGroup(2, 42, NextRec()).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiCommit(2).ok());  // returns before files unlinked

  ASSERT_TRUE(server_->WaitGroupWorkDrained(5 * 1000 * 1000).ok());
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "g/f" + std::to_string(i);
    EXPECT_FALSE(server_->UpcallIsLinked(name)) << name;
    EXPECT_EQ(fs_.Stat(name)->owner, "alice") << name;  // released
  }
  EXPECT_GE(server_->counters().groups_deleted.load(), 1u);
  EXPECT_GE(server_->counters().batched_local_commits.load(), 2u);  // kFiles > batch(5)
}

TEST_F(DlfmTest, DeleteGroupAbortRestoresGroup) {
  MakeFile("f");
  LinkAndCommit(1, "f", NextRec(), AccessControl::kFull, true);
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiDeleteGroup(2, 1, NextRec()).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiAbort(2).ok());
  // Group restored; file untouched.
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
  ASSERT_TRUE(server_->ApiBegin(3).ok());
  EXPECT_TRUE(server_->ApiDeleteGroup(3, 1, NextRec()).ok());  // group is active again
  ASSERT_TRUE(server_->ApiAbort(3).ok());
}

TEST_F(DlfmTest, DeleteGroupWorkResumesAfterCrash) {
  constexpr int kFiles = 8;
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "h/f" + std::to_string(i);
    MakeFile(name);
    ASSERT_TRUE(
        server_->ApiLink(1, LinkReq(1, name, NextRec(), AccessControl::kNone, false, 77))
            .ok());
  }
  ASSERT_TRUE(server_->ApiPrepare(1).ok());
  ASSERT_TRUE(server_->ApiCommit(1).ok());

  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiDeleteGroup(2, 77, NextRec()).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiCommit(2).ok());

  // Crash immediately: the daemon may not have processed anything yet, but
  // the committed 'C' transaction entry survives and work resumes (§3.5).
  auto durable = server_->SimulateCrash();
  server_.reset();
  NewServer(durable);
  ASSERT_TRUE(server_->WaitGroupWorkDrained(5 * 1000 * 1000).ok());
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_FALSE(server_->UpcallIsLinked("h/f" + std::to_string(i)));
  }
}

TEST_F(DlfmTest, BackupBarrierAndGarbageCollection) {
  MakeFile("a", "v1");
  const int64_t rec_a = NextRec();
  LinkAndCommit(1, "a", rec_a);
  ASSERT_TRUE(server_->ApiEnsureArchived(rec_a, 3 * 1000 * 1000).ok());
  EXPECT_TRUE(archive_.Has(archive::ArchiveKey{"srv1", "a", rec_a}));

  // Three backups with an unlink in between; keep_backups = 2.
  ASSERT_TRUE(server_->ApiRegisterBackup(1, NextRec()).ok());
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiUnlink(2, UnlinkReq(2, "a", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiCommit(2).ok());

  ASSERT_TRUE(server_->ApiRegisterBackup(2, NextRec()).ok());
  ASSERT_TRUE(server_->ApiRegisterBackup(3, NextRec()).ok());
  ASSERT_TRUE(server_->ApiRegisterBackup(4, NextRec()).ok());

  // The unlinked entry predates the oldest kept backup: GC removes it and
  // its archive copy.
  ASSERT_TRUE(server_->RunGarbageCollection().ok());
  EXPECT_GE(server_->counters().gc_removed_entries.load(), 1u);
  EXPECT_FALSE(archive_.Has(archive::ArchiveKey{"srv1", "a", rec_a}));
}

TEST_F(DlfmTest, RestoreToBackupRelinksAndRetrieves) {
  MakeFile("movie", "original-content");
  const int64_t rec = NextRec();
  LinkAndCommit(1, "movie", rec);
  ASSERT_TRUE(server_->ApiEnsureArchived(rec, 3 * 1000 * 1000).ok());

  const int64_t cut = NextRec();
  ASSERT_TRUE(server_->ApiRegisterBackup(1, cut).ok());

  // After the backup: unlink the file, then lose it from the filesystem,
  // and link a brand-new file.
  ASSERT_TRUE(server_->ApiBegin(2).ok());
  ASSERT_TRUE(server_->ApiUnlink(2, UnlinkReq(2, "movie", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(2).ok());
  ASSERT_TRUE(server_->ApiCommit(2).ok());
  ASSERT_TRUE(fs_.DeleteFile("movie", "alice").ok());

  MakeFile("newfile");
  LinkAndCommit(3, "newfile", NextRec());

  // Point-in-time restore to the backup cut.
  ASSERT_TRUE(server_->ApiRestoreToBackup(cut).ok());

  // "movie" is linked again and its content came back from the archive.
  EXPECT_TRUE(server_->UpcallIsLinked("movie"));
  ASSERT_TRUE(fs_.Exists("movie"));
  EXPECT_EQ(*fs_.ReadRaw("movie"), "original-content");
  EXPECT_GE(server_->counters().files_retrieved.load(), 1u);
  // "newfile" was linked after the cut: no longer under database control.
  EXPECT_FALSE(server_->UpcallIsLinked("newfile"));
}

TEST_F(DlfmTest, ReconcileFixesBothSides) {
  MakeFile("present");   // referenced by host, file exists, not linked -> relink
  MakeFile("orphan");    // linked at DLFM, not referenced by host -> unlink
  LinkAndCommit(1, "orphan", NextRec(), AccessControl::kNone, false);

  auto session = server_->ApiReconcileBegin();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server_
                  ->ApiReconcileAddBatch(*session, {{"present", NextRec()},
                                                    {"missing-file", NextRec()}})
                  .ok());
  auto report = server_->ApiReconcileRun(*session);
  ASSERT_TRUE(report.ok());
  // "missing-file" cannot be fixed (no file on the server): reported.
  ASSERT_EQ(report->first.size(), 1u);
  EXPECT_EQ(report->first[0], "missing-file");
  // "orphan" was unlinked.
  ASSERT_EQ(report->second.size(), 1u);
  EXPECT_EQ(report->second[0], "orphan");
  EXPECT_FALSE(server_->UpcallIsLinked("orphan"));
  // "present" was silently relinked.
  EXPECT_TRUE(server_->UpcallIsLinked("present"));
}

TEST_F(DlfmTest, UpcallSeesUncommittedLinkConservatively) {
  MakeFile("f");
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  ASSERT_TRUE(server_->ApiLink(1, LinkReq(1, "f", NextRec())).ok());
  // Uncommitted-read isolation: the in-flight linked entry is already
  // visible, so DLFF conservatively protects the file.
  EXPECT_TRUE(server_->UpcallIsLinked("f"));
  ASSERT_TRUE(server_->ApiAbort(1).ok());
  EXPECT_FALSE(server_->UpcallIsLinked("f"));
}

TEST_F(DlfmTest, StatsWatchdogRepairsClobberedStatistics) {
  // A user-issued runstats on the (small) live table clobbers the
  // hand-crafted statistics (§4)...
  ASSERT_TRUE(server_->local_db()->RunStats(server_->repo().file_table()).ok());
  EXPECT_TRUE(server_->repo().StatsLookClobbered());
  // ...and the watchdog re-applies and rebinds.
  ASSERT_TRUE(server_->CheckAndRepairStats().ok());
  EXPECT_FALSE(server_->repo().StatsLookClobbered());
  EXPECT_EQ(server_->counters().stats_watchdog_rebinds.load(), 1u);
}

TEST_F(DlfmTest, UtilityTransactionUsesBatchedCommits) {
  constexpr int kFiles = 23;  // commit_batch_size = 5
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "load/f" + std::to_string(i);
    MakeFile(name);
    DlfmRequest req = LinkReq(1, name, NextRec(), AccessControl::kNone, false);
    req.utility = true;
    ASSERT_TRUE(server_->ApiLink(1, req).ok());
  }
  EXPECT_GE(server_->counters().batched_local_commits.load(), 4u);
  ASSERT_TRUE(server_->ApiPrepare(1).ok());
  ASSERT_TRUE(server_->ApiCommit(1).ok());
  EXPECT_TRUE(server_->UpcallIsLinked("load/f0"));
  EXPECT_TRUE(server_->UpcallIsLinked("load/f22"));
}

TEST_F(DlfmTest, UtilityAbortCompensatesCommittedPieces) {
  constexpr int kFiles = 13;
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "load2/f" + std::to_string(i);
    MakeFile(name);
    DlfmRequest req = LinkReq(1, name, NextRec(), AccessControl::kNone, false);
    req.utility = true;
    ASSERT_TRUE(server_->ApiLink(1, req).ok());
  }
  // Host aborts the utility: pieces already committed locally must be
  // compensated via the in-flight transaction entry.
  ASSERT_TRUE(server_->ApiAbort(1).ok());
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_FALSE(server_->UpcallIsLinked("load2/f" + std::to_string(i))) << i;
  }
}

TEST_F(DlfmTest, RpcPathEndToEnd) {
  MakeFile("rpc-file");
  auto conn = server_->listener()->Connect();
  ASSERT_TRUE(conn.ok());
  auto call = [&](DlfmRequest req) {
    auto resp = (*conn)->Call(std::move(req));
    EXPECT_TRUE(resp.ok());
    return resp->ToStatus();
  };
  DlfmRequest begin;
  begin.api = DlfmApi::kBeginTxn;
  begin.txn = 55;
  ASSERT_TRUE(call(begin).ok());
  ASSERT_TRUE(call(LinkReq(55, "rpc-file", NextRec())).ok());
  DlfmRequest prep;
  prep.api = DlfmApi::kPrepare;
  prep.txn = 55;
  ASSERT_TRUE(call(prep).ok());
  DlfmRequest commit;
  commit.api = DlfmApi::kCommit;
  commit.txn = 55;
  ASSERT_TRUE(call(commit).ok());
  DlfmRequest islinked;
  islinked.api = DlfmApi::kIsLinked;
  islinked.filename = "rpc-file";
  auto resp = (*conn)->Call(std::move(islinked));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->value, 1);
  DlfmRequest bye;
  bye.api = DlfmApi::kDisconnect;
  (void)(*conn)->Call(std::move(bye));
}

TEST_F(DlfmTest, FinishedAgentsAreReaped) {
  // 50 sequential connect/call/disconnect cycles must not accumulate 50
  // dead agent threads: each agent retires on connection close and the
  // accept loop joins retirees before the next accept.
  for (int i = 0; i < 50; ++i) {
    auto conn = server_->listener()->Connect();
    ASSERT_TRUE(conn.ok());
    DlfmRequest ping;
    ping.api = DlfmApi::kIsLinked;
    ping.filename = "nothing";
    ASSERT_TRUE((*conn)->Call(std::move(ping)).ok());
    DlfmRequest bye;
    bye.api = DlfmApi::kDisconnect;
    (void)(*conn)->Call(std::move(bye));
  }
  // Retirement runs on the agent threads themselves and reaping happens
  // before each accept, so keep poking connections until the bookkeeping
  // drains (a retiree that missed the last accept waits for the next one).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->LiveAgentCount() > 2 && std::chrono::steady_clock::now() < deadline) {
    auto conn = server_->listener()->Connect();
    ASSERT_TRUE(conn.ok());
    DlfmRequest bye;
    bye.api = DlfmApi::kDisconnect;
    (void)(*conn)->Call(std::move(bye));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LE(server_->LiveAgentCount(), 2u);
}

TEST_F(DlfmTest, CopyDaemonRetriesFailedArchiveStore) {
  // First archive store fails; the pending entry must survive the failed
  // round and be retried, not deleted with the copy lost forever.
  FaultInjector::Spec spec;  // default action: return an error status
  spec.hits = 1;
  server_->fault().Arm(failpoints::kDlfmCopyStore, spec);
  MakeFile("retry.dat");
  const int64_t rec = NextRec();
  LinkAndCommit(1, "retry.dat", rec);
  ASSERT_TRUE(server_->WaitArchiveDrained(5 * 1000 * 1000).ok());
  EXPECT_TRUE(archive_.Has(archive::ArchiveKey{"srv1", "retry.dat", rec}));
  EXPECT_GE(server_->counters().archive_copy_failures.load(), 1u);
}

TEST_F(DlfmTest, CommitRetryLoopStopsOnShutdown) {
  MakeFile("stuck");
  ASSERT_TRUE(server_->ApiBegin(1).ok());
  ASSERT_TRUE(server_->ApiLink(1, LinkReq(1, "stuck", NextRec())).ok());
  ASSERT_TRUE(server_->ApiPrepare(1).ok());
  // Every commit attempt deadlocks: phase 2 must retry forever — until the
  // server shuts down, at which point it must bail out promptly.
  FaultInjector::Spec spec;
  spec.error = Status::Deadlock("injected");
  spec.hits = -1;
  server_->fault().Arm(failpoints::kDlfmCommitAttempt, spec);
  std::atomic<bool> done{false};
  Status st;
  std::thread committer([&] {
    st = server_->ApiCommit(1);
    done.store(true);
  });
  // Wait for evidence of retries (two fail-point hits) rather than
  // sleeping a guessed interval.
  const auto retry_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->fault().HitCount(failpoints::kDlfmCommitAttempt) < 2 &&
         std::chrono::steady_clock::now() < retry_deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(server_->fault().HitCount(failpoints::kDlfmCommitAttempt), 2u);
  EXPECT_FALSE(done.load());  // still retrying the injected deadlock
  server_->Stop();
  committer.join();
  EXPECT_TRUE(done.load());
  EXPECT_FALSE(st.ok());
}

TEST_F(DlfmTest, EnsureArchivedTimeoutComesFromOptions) {
  // Rebuild with a tiny barrier timeout on a simulated clock, so the test
  // proves the timeout is honored without waiting wall-clock seconds.
  server_->Stop();
  DlfmOptions opts;
  opts.server_name = "srv1";
  auto sim_clock = std::make_shared<SimClock>(1);
  opts.clock = sim_clock;
  opts.ensure_archived_timeout_micros = 50 * 1000;
  // Every virtual-clock sleep in the server (WAL media latency during
  // startup, phase-2 commit delay, the barrier poll, the Copy daemon's
  // retry backoff) BLOCKS until the clock advances, so pump the clock
  // from a helper for the whole test — including server construction.
  std::atomic<bool> pump_stop{false};
  std::thread pumper([&] {
    while (!pump_stop.load()) {
      if (sim_clock->waiters() > 0) {
        sim_clock->Advance(1000);
      } else {
        std::this_thread::yield();
      }
    }
  });
  server_ = std::make_unique<DlfmServer>(opts, &fs_, &archive_);
  ASSERT_TRUE(server_->Start().ok());
  // The archive never accepts the copy, so the barrier can never drain.
  FaultInjector::Spec spec;
  spec.hits = -1;
  server_->fault().Arm(failpoints::kDlfmCopyStore, spec);
  MakeFile("never.dat");
  const int64_t rec = NextRec();
  LinkAndCommit(1, "never.dat", rec);

  auto conn = server_->listener()->Connect();
  ASSERT_TRUE(conn.ok());
  DlfmRequest barrier;
  barrier.api = DlfmApi::kEnsureArchived;
  barrier.recovery_id = rec + 1;  // cut above the stuck pending entry
  auto resp = (*conn)->Call(std::move(barrier));
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ToStatus().ok());
  // The Copy daemon keeps retrying (and failing) on its own virtual
  // schedule; the pumper keeps time moving until a failure is recorded.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->counters().archive_copy_failures.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(server_->counters().archive_copy_failures.load(), 1u);
  DlfmRequest bye;
  bye.api = DlfmApi::kDisconnect;
  (void)(*conn)->Call(std::move(bye));
  // Stop the server while the pumper still runs: the Copy daemon is
  // parked in a virtual-clock sleep and needs time to move to notice
  // the shutdown.  (TearDown's Stop is then a no-op.)
  server_->Stop();
  pump_stop.store(true);
  pumper.join();
}

}  // namespace
}  // namespace datalinks::dlfm
