// Tests for the cost-based access-path optimizer — including the specific
// trap from §3.2.1/§4 of the paper: with small/default catalog statistics
// the optimizer picks a table scan even though a suitable index exists, and
// hand-crafted statistics force the index plan.
#include <gtest/gtest.h>

#include "sqldb/database.h"

namespace datalinks::sqldb {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();

    TableSchema s;
    s.name = "dfm_file";
    s.columns = {{"name", ValueType::kString, false},
                 {"txn", ValueType::kInt, false},
                 {"grp", ValueType::kInt, false},
                 {"recovery_id", ValueType::kInt, false}};
    table_ = *db_->CreateTable(s);
    name_ix_ = *db_->CreateIndex(IndexDef{"ix_name", table_, {0}, false});
    txn_ix_ = *db_->CreateIndex(IndexDef{"ix_txn", table_, {1}, false});
    grp_rec_ix_ = *db_->CreateIndex(IndexDef{"ix_grp_rec", table_, {2, 3}, false});
  }

  std::unique_ptr<Database> db_;
  TableId table_ = 0;
  IndexId name_ix_ = 0, txn_ix_ = 0, grp_rec_ix_ = 0;
};

TEST_F(OptimizerTest, DefaultStatsPickTableScanDespiteIndex) {
  // Freshly created table: cardinality 0.  The paper: "When the table size
  // (cardinality) is small, the optimizer could still pick table scan even
  // when an index is available."
  AccessPath p = db_->ChooseAccessPath(table_, {Pred::Eq("name", "f1")});
  EXPECT_EQ(p.kind, AccessPath::Kind::kTableScan);
}

TEST_F(OptimizerTest, HandCraftedStatsForceIndexScan) {
  // The paper's fix: "the statistics in the catalog are manually set before
  // DLFM's SQL programs are compiled and bound."
  TableStats stats;
  stats.cardinality = 1000000;
  stats.index_distinct[name_ix_] = 1000000;
  db_->SetTableStats(table_, stats);
  AccessPath p = db_->ChooseAccessPath(table_, {Pred::Eq("name", "f1")});
  EXPECT_EQ(p.kind, AccessPath::Kind::kIndexScan);
  EXPECT_EQ(p.index, name_ix_);
  EXPECT_LE(p.estimated_rows, 2.0);
}

TEST_F(OptimizerTest, PicksMostSelectiveIndex) {
  TableStats stats;
  stats.cardinality = 100000;
  stats.index_distinct[name_ix_] = 100000;  // nearly unique
  stats.index_distinct[txn_ix_] = 100;      // low cardinality
  db_->SetTableStats(table_, stats);
  AccessPath p =
      db_->ChooseAccessPath(table_, {Pred::Eq("name", "f"), Pred::Eq("txn", 7)});
  EXPECT_EQ(p.kind, AccessPath::Kind::kIndexScan);
  EXPECT_EQ(p.index, name_ix_);
}

TEST_F(OptimizerTest, CompositeIndexPrefixMatch) {
  TableStats stats;
  stats.cardinality = 100000;
  stats.index_distinct[grp_rec_ix_] = 50000;
  db_->SetTableStats(table_, stats);
  // Equality on grp only -> prefix length 1 on the composite index.
  AccessPath p = db_->ChooseAccessPath(table_, {Pred::Eq("grp", 3)});
  EXPECT_EQ(p.kind, AccessPath::Kind::kIndexScan);
  EXPECT_EQ(p.index, grp_rec_ix_);
  EXPECT_EQ(p.eq_prefix_len, 1);
  // Equality on both -> prefix length 2, better estimate.
  AccessPath p2 = db_->ChooseAccessPath(table_, {Pred::Eq("grp", 3), Pred::Eq("recovery_id", 9)});
  EXPECT_EQ(p2.eq_prefix_len, 2);
  EXPECT_LT(p2.estimated_rows, p.estimated_rows);
}

TEST_F(OptimizerTest, NoUsableIndexFallsBackToScan) {
  TableStats stats;
  stats.cardinality = 100000;
  db_->SetTableStats(table_, stats);
  // recovery_id alone is not a prefix of any index.
  AccessPath p = db_->ChooseAccessPath(table_, {Pred::Eq("recovery_id", 5)});
  EXPECT_EQ(p.kind, AccessPath::Kind::kTableScan);
}

TEST_F(OptimizerTest, RunStatsOverwritesHandCraftedStats) {
  // The §4 warning: a user-issued runstats clobbers hand-crafted values and
  // can flip plans back to table scans.
  TableStats stats;
  stats.cardinality = 1000000;
  stats.index_distinct[name_ix_] = 1000000;
  db_->SetTableStats(table_, stats);
  ASSERT_EQ(db_->ChooseAccessPath(table_, {Pred::Eq("name", "x")}).kind,
            AccessPath::Kind::kIndexScan);

  ASSERT_TRUE(db_->RunStats(table_).ok());  // table is actually empty
  EXPECT_EQ(db_->ChooseAccessPath(table_, {Pred::Eq("name", "x")}).kind,
            AccessPath::Kind::kTableScan);
}

TEST_F(OptimizerTest, BoundPlanIsFrozenUntilRebind) {
  TableStats stats;
  stats.cardinality = 1000000;
  stats.index_distinct[name_ix_] = 1000000;
  db_->SetTableStats(table_, stats);
  auto stmt = db_->Bind(BoundStatement::Kind::kSelect, table_,
                        {Pred::Eq("name", Operand::Param(0))});
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->path.kind, AccessPath::Kind::kIndexScan);

  // Stats change does not affect the already-bound plan.
  db_->SetTableStats(table_, TableStats{});
  EXPECT_EQ(stmt->path.kind, AccessPath::Kind::kIndexScan);
  // ...but a re-bind picks the (now) scan plan.
  auto rebound = db_->Bind(BoundStatement::Kind::kSelect, table_,
                           {Pred::Eq("name", Operand::Param(0))});
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(rebound->path.kind, AccessPath::Kind::kTableScan);
}

TEST_F(OptimizerTest, ExecutingBoundStatementsNeverReoptimizes) {
  // Static SQL: the optimizer runs once at Bind; every Execute* reuses the
  // frozen plan.  plan_binds counts ChooseAccessPath invocations and
  // plan_cache_hits counts executions that ran without one.
  auto stmt = db_->Bind(BoundStatement::Kind::kSelect, table_,
                        {Pred::Eq("name", Operand::Param(0))});
  ASSERT_TRUE(stmt.ok());
  const DatabaseStats before = db_->stats();

  constexpr int kExecutions = 100;
  Transaction* t = db_->Begin();
  for (int i = 0; i < kExecutions; ++i) {
    ASSERT_TRUE(db_->ExecuteSelect(t, *stmt, {Value("f" + std::to_string(i))}).ok());
  }
  ASSERT_TRUE(db_->Commit(t).ok());

  const DatabaseStats after = db_->stats();
  EXPECT_EQ(after.plan_binds, before.plan_binds) << "an execution re-ran the optimizer";
  EXPECT_EQ(after.plan_cache_hits - before.plan_cache_hits,
            static_cast<uint64_t>(kExecutions));
}

TEST_F(OptimizerTest, UniqueFullMatchEstimatesOneRow) {
  auto uix = db_->CreateIndex(IndexDef{"ix_uniq", table_, {0, 1}, true});
  ASSERT_TRUE(uix.ok());
  TableStats stats;
  stats.cardinality = 500000;
  stats.index_distinct[*uix] = 500000;
  db_->SetTableStats(table_, stats);
  AccessPath p =
      db_->ChooseAccessPath(table_, {Pred::Eq("name", "f"), Pred::Eq("txn", 1)});
  EXPECT_EQ(p.kind, AccessPath::Kind::kIndexScan);
  EXPECT_EQ(p.index, *uix);
  EXPECT_DOUBLE_EQ(p.estimated_rows, 1.0);
}

TEST_F(OptimizerTest, ExecutionAgreesWithEitherPlan) {
  // Whatever plan is chosen, results must be identical.
  Transaction* t = db_->Begin();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Insert(t, table_,
                            Row{Value("f" + std::to_string(i)), Value(i % 10), Value(i % 4),
                                Value(int64_t{i})})
                    .ok());
  }
  ASSERT_TRUE(db_->Commit(t).ok());

  Conjunction where = {Pred::Eq("txn", 3)};
  // Scan plan.
  db_->SetTableStats(table_, TableStats{});
  Transaction* t1 = db_->Begin();
  auto scan_rows = db_->Select(t1, table_, where);
  ASSERT_TRUE(scan_rows.ok());
  ASSERT_TRUE(db_->Commit(t1).ok());
  // Index plan.
  ASSERT_TRUE(db_->RunStats(table_).ok());
  Transaction* t2 = db_->Begin();
  auto ix_rows = db_->Select(t2, table_, where);
  ASSERT_TRUE(ix_rows.ok());
  ASSERT_TRUE(db_->Commit(t2).ok());

  EXPECT_EQ(scan_rows->size(), ix_rows->size());
  EXPECT_EQ(scan_rows->size(), 20u);
}

}  // namespace
}  // namespace datalinks::sqldb
