// Crash/restart recovery: redo of committed work, undo of losers,
// checkpoint interplay, catalog persistence.
#include <gtest/gtest.h>

#include "sqldb/database.h"

namespace datalinks::sqldb {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions o;
  o.lock_timeout_micros = 500 * 1000;
  return o;
}

TableSchema FileSchema() {
  TableSchema s;
  s.name = "files";
  s.columns = {{"name", ValueType::kString, false}, {"state", ValueType::kString, false}};
  return s;
}

TEST(Recovery, CommittedDataSurvivesCrash) {
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());
  ASSERT_TRUE(db->CreateIndex(IndexDef{"ix", t, {0}, true}).ok());

  Transaction* txn = db->Begin();
  ASSERT_TRUE(db->Insert(txn, t, {Value("a"), Value("linked")}).ok());
  ASSERT_TRUE(db->Insert(txn, t, {Value("b"), Value("linked")}).ok());
  ASSERT_TRUE(db->Commit(txn).ok());

  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(Opts(), durable)).value();
  TableId t2 = *db2->TableByName("files");
  Transaction* r = db2->Begin();
  auto rows = db2->Select(r, t2, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  ASSERT_TRUE(db2->Commit(r).ok());
}

TEST(Recovery, UncommittedWorkRolledBack) {
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());

  Transaction* committed = db->Begin();
  ASSERT_TRUE(db->Insert(committed, t, {Value("keep"), Value("linked")}).ok());
  ASSERT_TRUE(db->Commit(committed).ok());

  Transaction* loser = db->Begin();
  ASSERT_TRUE(db->Insert(loser, t, {Value("lose"), Value("linked")}).ok());
  ASSERT_TRUE(
      db->Update(loser, t, {Pred::Eq("name", "keep")}, {{"state", Operand("unlinked")}}).ok());
  // Force the WAL so the loser's records are durable (worst case for undo).
  ASSERT_TRUE(db->Checkpoint().ok());

  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(Opts(), durable)).value();
  TableId t2 = *db2->TableByName("files");
  Transaction* r = db2->Begin();
  auto rows = db2->Select(r, t2, {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].as_string(), "keep");
  EXPECT_EQ((*rows)[0][1].as_string(), "linked");  // loser's update undone
  ASSERT_TRUE(db2->Commit(r).ok());
}

TEST(Recovery, UnforcedCommitIsLost) {
  // A transaction whose commit record was never forced is simply absent
  // after the crash (we only force on commit; this simulates a crash racing
  // the commit call).  Validated by writing without committing.
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());
  Transaction* txn = db->Begin();
  ASSERT_TRUE(db->Insert(txn, t, {Value("x"), Value("linked")}).ok());
  // no commit, no checkpoint: nothing forced
  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(Opts(), durable)).value();
  TableId t2 = *db2->TableByName("files");
  Transaction* r = db2->Begin();
  auto rows = db2->Select(r, t2, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  ASSERT_TRUE(db2->Commit(r).ok());
}

TEST(Recovery, DeleteAndUpdateRedo) {
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());
  Transaction* a = db->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Insert(a, t, {Value("f" + std::to_string(i)), Value("linked")}).ok());
  }
  ASSERT_TRUE(db->Commit(a).ok());

  Transaction* b = db->Begin();
  ASSERT_TRUE(db->Delete(b, t, {Pred::Eq("name", "f3")}).ok());
  ASSERT_TRUE(
      db->Update(b, t, {Pred::Eq("name", "f5")}, {{"state", Operand("unlinked")}}).ok());
  ASSERT_TRUE(db->Commit(b).ok());

  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(Opts(), durable)).value();
  TableId t2 = *db2->TableByName("files");
  Transaction* r = db2->Begin();
  auto rows = db2->Select(r, t2, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
  auto f5 = db2->Select(r, t2, {Pred::Eq("name", "f5")});
  ASSERT_TRUE(f5.ok());
  ASSERT_EQ(f5->size(), 1u);
  EXPECT_EQ((*f5)[0][1].as_string(), "unlinked");
  ASSERT_TRUE(db2->Commit(r).ok());
}

TEST(Recovery, RolledBackTransactionStaysRolledBack) {
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());
  Transaction* a = db->Begin();
  ASSERT_TRUE(db->Insert(a, t, {Value("x"), Value("linked")}).ok());
  ASSERT_TRUE(db->Rollback(a).ok());
  Transaction* b = db->Begin();
  ASSERT_TRUE(db->Insert(b, t, {Value("y"), Value("linked")}).ok());
  ASSERT_TRUE(db->Commit(b).ok());

  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(Opts(), durable)).value();
  TableId t2 = *db2->TableByName("files");
  Transaction* r = db2->Begin();
  auto rows = db2->Select(r, t2, {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].as_string(), "y");
  ASSERT_TRUE(db2->Commit(r).ok());
}

TEST(Recovery, RepeatedCrashesAreIdempotent) {
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());
  Transaction* a = db->Begin();
  ASSERT_TRUE(db->Insert(a, t, {Value("stable"), Value("linked")}).ok());
  ASSERT_TRUE(db->Commit(a).ok());
  auto durable = db->SimulateCrash();
  for (int i = 0; i < 3; ++i) {
    auto db2 = std::move(Database::Open(Opts(), durable)).value();
    TableId t2 = *db2->TableByName("files");
    Transaction* r = db2->Begin();
    auto rows = db2->Select(r, t2, {});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u);
    ASSERT_TRUE(db2->Commit(r).ok());
    durable = db2->SimulateCrash();
  }
}

TEST(Recovery, WorkAfterRecoveryUsesFreshTxnIds) {
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());
  Transaction* a = db->Begin();
  const TxnId old_id = a->id();
  ASSERT_TRUE(db->Insert(a, t, {Value("x"), Value("linked")}).ok());
  ASSERT_TRUE(db->Commit(a).ok());

  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(Opts(), durable)).value();
  Transaction* b = db2->Begin();
  EXPECT_GT(b->id(), old_id);
  ASSERT_TRUE(db2->Commit(b).ok());
}

TEST(Recovery, IndexesRebuiltCorrectly) {
  auto db = std::move(Database::Open(Opts())).value();
  TableId t = *db->CreateTable(FileSchema());
  ASSERT_TRUE(db->CreateIndex(IndexDef{"ix", t, {0}, true}).ok());
  Transaction* a = db->Begin();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Insert(a, t, {Value("f" + std::to_string(i)), Value("linked")}).ok());
  }
  ASSERT_TRUE(db->Commit(a).ok());

  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(Opts(), durable)).value();
  TableId t2 = *db2->TableByName("files");
  ASSERT_TRUE(db2->RunStats(t2).ok());
  auto stats = db2->GetTableStats(t2);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cardinality, 100);
  // Unique index still enforces.
  Transaction* b = db2->Begin();
  EXPECT_TRUE(db2->Insert(b, t2, {Value("f7"), Value("linked")}).IsConflict());
  ASSERT_TRUE(db2->Rollback(b).ok());
}

TEST(Recovery, AutoCheckpointKeepsLogBounded) {
  DatabaseOptions opts = Opts();
  opts.log_capacity_bytes = 128 * 1024;
  auto db = std::move(Database::Open(opts)).value();
  TableId t = *db->CreateTable(FileSchema());
  // Many small committed transactions: auto-checkpoints must keep the WAL
  // under capacity indefinitely.
  for (int i = 0; i < 3000; ++i) {
    Transaction* txn = db->Begin();
    ASSERT_TRUE(
        db->Insert(txn, t, {Value("f" + std::to_string(i)), Value("linked")}).ok());
    ASSERT_TRUE(db->Commit(txn).ok());
  }
  EXPECT_LE(db->wal().stats().bytes_in_use, opts.log_capacity_bytes);
  EXPECT_GE(db->wal().stats().checkpoints, 1u);
}

}  // namespace
}  // namespace datalinks::sqldb
