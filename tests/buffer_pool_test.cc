// Buffer pool, pager ping-pong and paged-storage recovery edges:
//  - pin/evict/flush ordering and the WAL-ahead rule (a dirty page is never
//    written back past the durable log frontier);
//  - torn page writes falling back to the surviving ping-pong slot;
//  - equal-LSN rewrites strictly superseding the older slot (regression:
//    a recovery-undo writeback that ties the checkpoint-flushed copy's
//    version must not lose to it and resurrect an undone loser row);
//  - torn checkpoint-image anchors at EVERY prefix boundary falling back to
//    the previous anchor + log redo;
//  - a workload bigger than the pool staying correct through eviction and
//    a crash/restart;
//  - concurrent DML on a tiny pool (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "sqldb/buffer_pool.h"
#include "sqldb/database.h"
#include "sqldb/pager.h"
#include "sqldb/wal.h"

namespace datalinks::sqldb {
namespace {

// --------------------------------------------------------------------------
// Pool-level fixtures: a DurableStore + Pager + WAL + BufferPool wired the
// way Database wires them, but driven directly.
// --------------------------------------------------------------------------

struct PoolRig {
  explicit PoolRig(size_t capacity_pages, FaultInjector* fault = nullptr)
      : store(std::make_shared<DurableStore>()),
        pager(store, 4096, fault, nullptr),
        wal(store, 1 << 20),
        pool(&pager, capacity_pages) {
    pool.set_wal(&wal);
  }

  /// Dirty `id`, formatting it as a heap page carrying `marker` right after
  /// the header, logging one record; returns the record LSN.  Mirrors the
  /// heap mutator protocol: MarkDirtyProvisional BEFORE the append, page
  /// header LSN + NoteAppliedLsn after (the flusher reads the LSN it must
  /// force from the page header).
  Lsn DirtyPage(PageId id, const std::string& marker) {
    BufferPool::PageRef ref = pool.Pin(id);
    std::unique_lock<sim::SharedMutex> latch(ref.latch());
    ref.MarkDirtyProvisional();
    LogRecord rec{0, /*txn=*/1, LogRecordType::kInsert, /*table=*/1,
                  /*rid=*/static_cast<RowId>(id), {}, {}};
    rec.page = id;
    Lsn lsn = kInvalidLsn;
    EXPECT_TRUE(wal.Append(std::move(rec), /*exempt=*/false, &lsn).ok());
    page::Init(&ref.bytes(), 4096, kPageTypeHeap);
    ref.bytes().replace(kPageHeaderSize, marker.size(), marker);
    page::SetLsn(&ref.bytes(), lsn);
    ref.NoteAppliedLsn(lsn);
    return lsn;
  }

  /// The marker `DirtyPage` stamped into durable page `id`; "" when the
  /// page never reached the pager.
  std::string ReadMarker(PageId id, size_t len) {
    std::string out;
    pager.Read(id, &out);
    if (out.size() < kPageHeaderSize + len) return "";
    return out.substr(kPageHeaderSize, len);
  }

  std::shared_ptr<DurableStore> store;
  Pager pager;
  WriteAheadLog wal;
  BufferPool pool;
};

TEST(BufferPool, PinMissThenHitCountsStats) {
  PoolRig rig(4);
  { BufferPool::PageRef r = rig.pool.Pin(1); }
  { BufferPool::PageRef r = rig.pool.Pin(1); }
  const BufferPool::Stats s = rig.pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.cached_pages, 1u);
}

TEST(BufferPool, EvictionFlushesDirtyVictimAndObeysWalAhead) {
  PoolRig rig(4);  // pool capacity clamps to a 4-frame minimum
  const Lsn lsn = rig.DirtyPage(1, "payload-1");
  // Nothing forced yet: the WAL-ahead rule is live.
  ASSERT_LT(rig.store->max_forced_lsn(), lsn);

  // Pin-and-hold the other three frames, then pin a fifth page: the only
  // evictable victim is the dirty, unpinned page 1.
  BufferPool::PageRef h2 = rig.pool.Pin(2);
  BufferPool::PageRef h3 = rig.pool.Pin(3);
  BufferPool::PageRef h4 = rig.pool.Pin(4);
  { BufferPool::PageRef r5 = rig.pool.Pin(5); }

  const BufferPool::Stats s = rig.pool.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_GE(s.flushes, 1u);
  // The eviction wrote page 1 back -- so the log MUST have been forced
  // through the page's LSN first (write-ahead), and the payload must be
  // readable from the pager.
  EXPECT_GE(rig.store->max_forced_lsn(), lsn);
  EXPECT_EQ(rig.ReadMarker(1, 9), "payload-1");
}

TEST(BufferPool, MinDirtyRecLsnIsConservativeAndClearsOnFlush) {
  PoolRig rig(4);
  EXPECT_EQ(rig.pool.MinDirtyRecLsn(), kInvalidLsn);
  const Lsn lsn = rig.DirtyPage(1, "x");
  const Lsn floor = rig.pool.MinDirtyRecLsn();
  ASSERT_NE(floor, kInvalidLsn);
  // MarkDirtyProvisional runs BEFORE the append, so the recorded rec_lsn
  // can never exceed the record that dirtied the page.
  EXPECT_LE(floor, lsn);
  ASSERT_TRUE(rig.pool.FlushAll().ok());
  EXPECT_EQ(rig.pool.MinDirtyRecLsn(), kInvalidLsn);
  EXPECT_EQ(rig.pool.stats().dirty_pages, 0u);
}

TEST(BufferPool, OverflowFramesWhenEveryFrameIsPinned) {
  PoolRig rig(4);  // 4-frame minimum capacity
  BufferPool::PageRef a = rig.pool.Pin(1);
  BufferPool::PageRef b = rig.pool.Pin(2);
  BufferPool::PageRef d = rig.pool.Pin(3);
  BufferPool::PageRef e = rig.pool.Pin(4);
  BufferPool::PageRef c = rig.pool.Pin(5);  // beyond capacity: overflow frame
  EXPECT_TRUE(a && b && d && e && c);
  {
    std::unique_lock<sim::SharedMutex> l(c.latch());
    c.bytes() = "overflow";
  }
  EXPECT_GE(rig.pool.stats().overflow_frames, 1u);
}

TEST(BufferPool, DiscardDropsDirtyPageWithoutWriteback) {
  PoolRig rig(4);
  rig.DirtyPage(5, "doomed");
  rig.pool.Discard(5);
  ASSERT_TRUE(rig.pool.FlushAll().ok());
  std::string out;
  rig.pager.Read(5, &out);
  EXPECT_TRUE(out.empty());  // never reached the durable store
}

TEST(BufferPool, FlushFailureLeavesPageDirtyForRetry) {
  FaultInjector fault;
  PoolRig rig(4, &fault);
  rig.DirtyPage(1, "sticky");

  FaultInjector::Spec spec;
  spec.action = FaultInjector::Action::kError;
  fault.Arm(failpoints::kSqldbPageFlush, spec);
  EXPECT_FALSE(rig.pool.FlushAll().ok());
  BufferPool::Stats s = rig.pool.stats();
  EXPECT_GE(s.flush_failures, 1u);
  EXPECT_EQ(s.dirty_pages, 1u);  // still dirty: retry must be possible

  fault.Disarm(failpoints::kSqldbPageFlush);
  EXPECT_TRUE(rig.pool.FlushAll().ok());
  EXPECT_EQ(rig.ReadMarker(1, 6), "sticky");
}

// Regression: the window between an evictor choosing a dirty victim and
// FlushFrame re-acquiring the pool mutex could see the victim frame
// Discarded (and free-listed), cleaned by a concurrent FlushAll, or claimed
// by another evictor.  The evictor then reused the frame anyway, mapping
// two page ids onto one frame — two B-trees ended up writing into each
// other's node bytes (caught by TSan under the E16 multi-shard bench).
// Stress the exact triangle — eviction pressure + Discard + checkpoint —
// and require every page read to carry its own stamp.
TEST(BufferPoolConcurrency, EvictDiscardCheckpointRaceNeverAliasesFrames) {
  PoolRig rig(4);  // minimum pool: every pin beyond 4 pages evicts
  constexpr int kWorkers = 4;
  constexpr int kPagesPerWorker = 8;
  constexpr int kIters = 600;
  auto stamp = [](PageId id) {
    std::string s = std::to_string(id);
    s.resize(8, '#');
    return s;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> aliased{0};
  std::thread checkpointer([&] {
    while (!stop.load()) (void)rig.pool.FlushAll();
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Disjoint page-id universe per worker: each page is only ever
      // stamped with its own id, so any foreign stamp is frame aliasing,
      // not a logical write-write conflict.
      for (int i = 0; i < kIters; ++i) {
        const PageId id = 1 + static_cast<PageId>(w) * kPagesPerWorker +
                          static_cast<PageId>(i % kPagesPerWorker);
        const int op = i % 8;
        if (op == 6) {
          rig.pool.Discard(id);
        } else if ((op & 1) != 0) {
          rig.DirtyPage(id, stamp(id));
        } else {
          BufferPool::PageRef ref = rig.pool.Pin(id);
          std::shared_lock<sim::SharedMutex> latch(ref.latch());
          const std::string& pg = ref.bytes();
          // Empty = never flushed before a Discard dropped it; anything
          // else must be this page's own stamp.
          if (pg.size() >= kPageHeaderSize + 8 &&
              pg.compare(kPageHeaderSize, 8, stamp(id)) != 0) {
            aliased.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true);
  checkpointer.join();
  EXPECT_EQ(aliased.load(), 0) << "a frame served two live pages";
}

// --------------------------------------------------------------------------
// Pager ping-pong slots.
// --------------------------------------------------------------------------

TEST(Pager, TornWriteFallsBackToSurvivingSlot) {
  FaultInjector fault;
  auto store = std::make_shared<DurableStore>();
  Pager pager(store, 4096, &fault, nullptr);

  ASSERT_TRUE(pager.Write(7, "version-one", 10).ok());

  FaultInjector::Spec spec;
  spec.action = FaultInjector::Action::kError;
  fault.Arm(failpoints::kSqldbPagePartialWrite, spec);
  EXPECT_FALSE(pager.Write(7, "version-two", 20).ok());
  EXPECT_GE(pager.stats().torn_writes, 1u);

  // The torn slot fails its CRC; the previous good version is the page.
  std::string out;
  pager.Read(7, &out);
  EXPECT_EQ(out, "version-one");

  // A retried write (post-"repair") targets the torn slot and wins.
  fault.Disarm(failpoints::kSqldbPagePartialWrite);
  ASSERT_TRUE(pager.Write(7, "version-two", 20).ok());
  pager.Read(7, &out);
  EXPECT_EQ(out, "version-two");
}

TEST(Pager, EqualVersionRewriteStrictlySupersedes) {
  // Regression: recovery undo can write a page whose LSN ties the copy a
  // fuzzy checkpoint already flushed (the undo is logical and the page
  // header LSN is a monotone max).  The slot version is a recency
  // discriminator, so the NEWER write must always win the read -- otherwise
  // the stale pre-undo image resurrects an undone loser row after the next
  // crash.
  auto store = std::make_shared<DurableStore>();
  Pager pager(store, 4096, nullptr, nullptr);
  ASSERT_TRUE(pager.Write(9, "stale", 5).ok());
  ASSERT_TRUE(pager.Write(9, "fresh", 5).ok());
  std::string out;
  pager.Read(9, &out);
  EXPECT_EQ(out, "fresh");
  ASSERT_TRUE(pager.Write(9, "freshest", 5).ok());
  pager.Read(9, &out);
  EXPECT_EQ(out, "freshest");
}

// --------------------------------------------------------------------------
// Database-level: torn checkpoint anchors, bigger-than-pool workloads.
// --------------------------------------------------------------------------

DatabaseOptions SmallOpts(size_t pool_pages = 1024) {
  DatabaseOptions o;
  o.lock_timeout_micros = 500 * 1000;
  o.buffer_pool_pages = pool_pages;
  return o;
}

TableSchema FileSchema() {
  TableSchema s;
  s.name = "files";
  s.columns = {{"name", ValueType::kString, false},
               {"state", ValueType::kString, false}};
  return s;
}

std::vector<std::string> Names(Database* db) {
  TableId t = *db->TableByName("files");
  Transaction* r = db->Begin();
  auto rows = db->Select(r, t, {});
  EXPECT_TRUE(rows.ok());
  std::vector<std::string> names;
  for (const Row& row : *rows) names.push_back(row[0].as_string());
  EXPECT_TRUE(db->Commit(r).ok());
  std::sort(names.begin(), names.end());
  return names;
}

TEST(TornCheckpoint, EveryPrefixBoundaryFallsBackToPreviousAnchor) {
  // Build one scenario to learn the image size, then replay it once per
  // prefix length p, simulating a crash that tore the in-flight anchor
  // write after exactly p bytes.  Recovery must CRC-reject the torn anchor,
  // fall back to the previous one plus log redo, and still undo the loser.
  size_t image_size = 0;
  for (size_t prefix = 0;; ++prefix) {
    auto db = std::move(Database::Open(SmallOpts())).value();
    TableId t = *db->CreateTable(FileSchema());
    ASSERT_TRUE(db->CreateIndex(IndexDef{"ix", t, {0}, true}).ok());
    TableSchema aux_schema;
    aux_schema.name = "aux";
    aux_schema.columns = {{"k", ValueType::kInt, false}};
    TableId aux = *db->CreateTable(aux_schema);

    Transaction* base = db->Begin();
    ASSERT_TRUE(db->Insert(base, t, {Value("a"), Value("linked")}).ok());
    ASSERT_TRUE(db->Insert(base, t, {Value("b"), Value("linked")}).ok());
    ASSERT_TRUE(db->Commit(base).ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // anchor A; log truncated to A

    // Post-anchor traffic, all newer than anchor A: a committed insert, a
    // loser insert, and a committed write on the lock-disjoint aux table
    // whose commit forces the loser's records into the durable log (force
    // is global across WAL shards).
    Transaction* winner = db->Begin();
    ASSERT_TRUE(db->Insert(winner, t, {Value("c"), Value("linked")}).ok());
    ASSERT_TRUE(db->Commit(winner).ok());
    Transaction* loser = db->Begin();
    ASSERT_TRUE(db->Insert(loser, t, {Value("z"), Value("loser")}).ok());
    Transaction* forcer = db->Begin();
    ASSERT_TRUE(db->Insert(forcer, aux, {Value(int64_t{1})}).ok());
    ASSERT_TRUE(db->Commit(forcer).ok());

    auto durable = db->SimulateCrash();
    // Simulate a checkpoint whose anchor write tore after `prefix` bytes:
    // the new active slot holds a truncated image with the full image's
    // CRC.  (Log truncation never ran -- exactly the crash-mid-SetCheckpoint
    // state.)  A fresh catalog image for this scenario serves as the
    // in-flight payload.
    const std::string image = durable->checkpoint_image();
    ASSERT_FALSE(image.empty());
    if (image_size == 0) image_size = image.size();
    ASSERT_EQ(image.size(), image_size) << "image size must be deterministic";
    const Lsn anchor_lsn = durable->checkpoint_lsn();
    durable->SetCheckpoint(image, anchor_lsn);
    durable->CorruptActiveCheckpoint(prefix);

    auto reopened = Database::Open(SmallOpts(), durable);
    ASSERT_TRUE(reopened.ok()) << "prefix " << prefix << ": "
                               << reopened.status().ToString();
    auto db2 = std::move(reopened).value();
    EXPECT_EQ(Names(db2.get()), (std::vector<std::string>{"a", "b", "c"}))
        << "prefix " << prefix;
    EXPECT_TRUE(db2->CheckIntegrity().ok()) << "prefix " << prefix;
    if (prefix >= image_size) break;  // last iteration: CRC-clean anchor
  }
}

TEST(PagedStorage, BiggerThanPoolWorkloadSurvivesEvictionAndCrash) {
  constexpr int kRows = 300;
  DatabaseOptions o = SmallOpts(/*pool_pages=*/4);
  o.page_size_bytes = 1024;
  auto db = std::move(Database::Open(o)).value();
  TableId t = *db->CreateTable(FileSchema());
  ASSERT_TRUE(db->CreateIndex(IndexDef{"ix", t, {0}, true}).ok());

  for (int i = 0; i < kRows; i += 10) {
    Transaction* txn = db->Begin();
    for (int j = i; j < i + 10; ++j) {
      ASSERT_TRUE(
          db->Insert(txn, t, {Value("f" + std::to_string(1000 + j)), Value("linked")}).ok());
    }
    ASSERT_TRUE(db->Commit(txn).ok());
  }

  EXPECT_EQ(Names(db.get()).size(), static_cast<size_t>(kRows));
  EXPECT_TRUE(db->CheckIntegrity().ok());
  const BufferPool::Stats s = db->buffer_pool_stats();
  EXPECT_GT(s.evictions, 0u) << "workload must not fit the 4-page pool";
  EXPECT_GT(s.hits, 0u);

  auto durable = db->SimulateCrash();
  auto db2 = std::move(Database::Open(o, durable)).value();
  EXPECT_EQ(Names(db2.get()).size(), static_cast<size_t>(kRows));
  EXPECT_TRUE(db2->CheckIntegrity().ok());
}

TEST(PagedStorage, ConcurrentDmlOnTinyPool) {
  // Stress the pool's latch/eviction paths from several writers at once;
  // run under TSan in CI.  Disjoint key ranges per thread keep lock waits
  // out of the picture -- the contention under test is frame-level.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  DatabaseOptions o = SmallOpts(/*pool_pages=*/4);
  o.page_size_bytes = 1024;
  auto db = std::move(Database::Open(o)).value();
  TableId t = *db->CreateTable(FileSchema());
  ASSERT_TRUE(db->CreateIndex(IndexDef{"ix", t, {0}, true}).ok());

  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string name = "t" + std::to_string(ti) + "-" + std::to_string(i);
        Transaction* txn = db->Begin();
        if (!db->Insert(txn, t, {Value(name), Value("linked")}).ok()) {
          db->Rollback(txn);
          continue;
        }
        if (i % 3 == 0) {
          (void)db->Update(txn, t, {Pred::Eq("name", name)},
                           {{"state", Operand("unlinked")}});
        }
        ASSERT_TRUE(db->Commit(txn).ok());
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(Names(db.get()).size(),
            static_cast<size_t>(kThreads * kOpsPerThread));
  EXPECT_TRUE(db->CheckIntegrity().ok());
  EXPECT_GT(db->buffer_pool_stats().evictions, 0u);
}

}  // namespace
}  // namespace datalinks::sqldb
