// Property-based tests (parameterized over PRNG seeds):
//
//  P1  Crash-recovery: after random committed/rolled-back/in-flight work
//      and a crash at an arbitrary point, recovery yields exactly the
//      committed state (compared against an in-memory model), unique
//      indexes still hold, and the engine remains fully usable.
//
//  P2  DLFM 2PC outcomes: a random interleaving of link/unlink/backout
//      operations with random prepare/commit/abort outcomes (and random
//      DLFM crashes between prepare and resolution) always converges to
//      the model's linked-set — the delayed-update scheme never loses or
//      resurrects a link.
//
//  P3  Engine under concurrent randomized load keeps the File-table
//      invariant (at most one linked entry per name) regardless of the
//      next-key-locking / escalation configuration.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "archive/archive_server.h"
#include "common/random.h"
#include "dlfm/server.h"
#include "fsim/file_server.h"
#include "sqldb/database.h"

namespace datalinks {
namespace {

using sqldb::Pred;
using sqldb::Row;
using sqldb::Value;

// ---------------------------------------------------------------------------
// P1: crash-recovery fuzz
// ---------------------------------------------------------------------------

class RecoveryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryFuzz, RecoversExactlyCommittedState) {
  Random rng(GetParam());
  sqldb::DatabaseOptions opts;
  opts.lock_timeout_micros = 200 * 1000;
  // Small log: forces auto-checkpoints into the mix.
  opts.log_capacity_bytes = 64 * 1024;
  auto db = std::move(sqldb::Database::Open(opts)).value();

  sqldb::TableSchema schema;
  schema.name = "kv";
  schema.columns = {{"k", sqldb::ValueType::kString, false},
                    {"v", sqldb::ValueType::kInt, false}};
  sqldb::TableId table = *db->CreateTable(schema);
  ASSERT_TRUE(db->CreateIndex(sqldb::IndexDef{"ux_k", table, {0}, true}).ok());

  std::map<std::string, int64_t> model;  // committed state
  const int kRounds = 30;
  for (int round = 0; round < kRounds; ++round) {
    auto* txn = db->Begin();
    std::map<std::string, std::optional<int64_t>> staged;  // this txn's writes
    const int ops = 1 + static_cast<int>(rng.Uniform(5));
    bool aborted_by_engine = false;
    for (int i = 0; i < ops && !aborted_by_engine; ++i) {
      const std::string k = "k" + std::to_string(rng.Uniform(20));
      const bool exists =
          staged.count(k) != 0 ? staged[k].has_value() : model.count(k) != 0;
      Status st;
      if (!exists) {
        const int64_t v = static_cast<int64_t>(rng.Uniform(1000));
        st = db->Insert(txn, table, Row{Value(k), Value(v)});
        if (st.ok()) staged[k] = v;
      } else if (rng.Bernoulli(0.5)) {
        const int64_t v = static_cast<int64_t>(rng.Uniform(1000));
        auto n = db->Update(txn, table, {Pred::Eq("k", k)}, {{"v", sqldb::Operand(v)}});
        st = n.ok() ? Status::OK() : n.status();
        if (st.ok()) staged[k] = v;
      } else {
        auto n = db->Delete(txn, table, {Pred::Eq("k", k)});
        st = n.ok() ? Status::OK() : n.status();
        if (st.ok()) staged[k] = std::nullopt;
      }
      if (st.IsTransactionFatal()) aborted_by_engine = true;
    }
    const double dice = rng.Bernoulli(0.5) ? 1 : 0;
    if (aborted_by_engine || dice == 0) {
      ASSERT_TRUE(db->Rollback(txn).ok());
    } else {
      ASSERT_TRUE(db->Commit(txn).ok());
      for (auto& [k, v] : staged) {
        if (v.has_value()) {
          model[k] = *v;
        } else {
          model.erase(k);
        }
      }
    }
    // Occasionally leave a transaction in flight and crash.
    if (rng.Bernoulli(0.15)) {
      auto* loser = db->Begin();
      (void)db->Insert(loser, table,
                       Row{Value("loser" + std::to_string(round)), Value(int64_t{-1})});
      if (rng.Bernoulli(0.5)) (void)db->Checkpoint();  // harden the loser's records
      auto durable = db->SimulateCrash();
      db = std::move(sqldb::Database::Open(opts, durable)).value();
      table = *db->TableByName("kv");
    }
  }

  // Final crash + recovery, then compare against the model.
  auto durable = db->SimulateCrash();
  db = std::move(sqldb::Database::Open(opts, durable)).value();
  table = *db->TableByName("kv");
  auto* check = db->Begin();
  auto rows = db->Select(check, table, {});
  ASSERT_TRUE(rows.ok());
  std::map<std::string, int64_t> actual;
  for (const Row& r : *rows) {
    EXPECT_TRUE(actual.emplace(r[0].as_string(), r[1].as_int()).second)
        << "duplicate key " << r[0].as_string();
  }
  EXPECT_EQ(actual, model);
  ASSERT_TRUE(db->Commit(check).ok());

  // The engine is still fully usable: the unique index still enforces.
  auto* post = db->Begin();
  if (!model.empty()) {
    EXPECT_TRUE(
        db->Insert(post, table, Row{Value(model.begin()->first), Value(int64_t{1})})
            .IsConflict());
  }
  ASSERT_TRUE(db->Rollback(post).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz, ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// P2: DLFM 2PC outcome model
// ---------------------------------------------------------------------------

class DlfmOutcomeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DlfmOutcomeFuzz, DelayedUpdateConvergesToModel) {
  Random rng(GetParam());
  fsim::FileServer fs("srv");
  archive::ArchiveServer ar;
  dlfm::DlfmOptions opts;
  opts.server_name = "srv";
  auto server = std::make_unique<dlfm::DlfmServer>(opts, &fs, &ar);
  ASSERT_TRUE(server->Start().ok());

  constexpr int kFiles = 8;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(fs.CreateFile("f" + std::to_string(i), "u", 0644, "x").ok());
  }

  std::set<std::string> model;  // linked files (committed state)
  uint64_t seq = 1;
  dlfm::GlobalTxnId next_txn = 100;

  for (int round = 0; round < 25; ++round) {
    const dlfm::GlobalTxnId txn = next_txn++;
    ASSERT_TRUE(server->ApiBegin(txn).ok());
    std::set<std::string> staged_links, staged_unlinks;
    std::map<std::string, int64_t> unlink_recs;
    bool failed = false;

    const int ops = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < ops && !failed; ++i) {
      const std::string f = "f" + std::to_string(rng.Uniform(kFiles));
      const bool linked_now = (model.count(f) != 0 || staged_links.count(f) != 0) &&
                              staged_unlinks.count(f) == 0;
      dlfm::DlfmRequest req;
      req.txn = txn;
      req.filename = f;
      req.recovery_id = dlfm::RecoveryId::Make(1, seq++);
      if (!linked_now && staged_unlinks.count(f) == 0) {
        req.api = dlfm::DlfmApi::kLinkFile;
        req.recovery_option = false;
        Status st = server->ApiLink(txn, req);
        if (st.ok()) {
          staged_links.insert(f);
          // Sometimes exercise the savepoint backout immediately.
          if (rng.Bernoulli(0.2)) {
            dlfm::DlfmRequest undo = req;
            undo.in_backout = true;
            ASSERT_TRUE(server->ApiLink(txn, undo).ok());
            staged_links.erase(f);
          }
        } else if (st.IsTransactionFatal()) {
          failed = true;
        }
      } else if (linked_now && staged_links.count(f) == 0) {
        req.api = dlfm::DlfmApi::kUnlinkFile;
        Status st = server->ApiUnlink(txn, req);
        if (st.ok()) {
          staged_unlinks.insert(f);
          unlink_recs[f] = req.recovery_id;
          if (rng.Bernoulli(0.2)) {
            dlfm::DlfmRequest undo = req;
            undo.in_backout = true;
            ASSERT_TRUE(server->ApiUnlink(txn, undo).ok());
            staged_unlinks.erase(f);
            unlink_recs.erase(f);
          }
        } else if (st.IsTransactionFatal()) {
          failed = true;
        }
      }
    }

    // Random outcome: abort before prepare / abort after prepare / commit,
    // with an optional crash after prepare (indoubt resolution path).
    const uint64_t outcome = rng.Uniform(failed ? 1 : 4);
    if (outcome == 0) {
      ASSERT_TRUE(server->ApiAbort(txn).ok());
      continue;
    }
    Status pst = server->ApiPrepare(txn);
    if (!pst.ok()) {
      ASSERT_TRUE(server->ApiAbort(txn).ok());
      continue;
    }
    if (outcome == 3 && rng.Bernoulli(0.6)) {
      // Crash while indoubt; the outcome is delivered after restart.
      auto durable = server->SimulateCrash();
      server = std::make_unique<dlfm::DlfmServer>(opts, &fs, &ar, durable);
      ASSERT_TRUE(server->Start().ok());
      auto indoubt = server->ListIndoubt();
      ASSERT_TRUE(indoubt.ok());
      ASSERT_TRUE(std::count(indoubt->begin(), indoubt->end(), txn) == 1);
    }
    if (outcome == 1) {
      ASSERT_TRUE(server->ApiAbort(txn).ok());
    } else {
      ASSERT_TRUE(server->ApiCommit(txn).ok());
      for (const std::string& f : staged_unlinks) model.erase(f);
      for (const std::string& f : staged_links) model.insert(f);
    }
  }

  // Convergence: the DLFM's linked set equals the model, file by file.
  for (int i = 0; i < kFiles; ++i) {
    const std::string f = "f" + std::to_string(i);
    EXPECT_EQ(server->UpcallIsLinked(f), model.count(f) != 0) << f << " seed " << GetParam();
  }
  EXPECT_TRUE(server->ListIndoubt()->empty());
  server->Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DlfmOutcomeFuzz, ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// P3: concurrent invariant sweep over engine configurations
// ---------------------------------------------------------------------------

struct EngineConfig {
  bool next_key_locking;
  size_t escalation_threshold;
};

class ConcurrentInvariant : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(ConcurrentInvariant, UniqueLinkedEntryInvariantHolds) {
  sqldb::DatabaseOptions opts;
  opts.next_key_locking = GetParam().next_key_locking;
  opts.lock_escalation_threshold = GetParam().escalation_threshold;
  opts.lock_timeout_micros = 100 * 1000;
  auto db = std::move(sqldb::Database::Open(opts)).value();

  sqldb::TableSchema schema;
  schema.name = "dfm_file";
  schema.columns = {{"name", sqldb::ValueType::kString, false},
                    {"check_flag", sqldb::ValueType::kInt, false},
                    {"txn", sqldb::ValueType::kInt, false}};
  sqldb::TableId table = *db->CreateTable(schema);
  ASSERT_TRUE(db->CreateIndex(sqldb::IndexDef{"ux", table, {0, 1}, true}).ok());
  ASSERT_TRUE(db->CreateIndex(sqldb::IndexDef{"ix_txn", table, {2}, false}).ok());
  ASSERT_TRUE(db->RunStats(table).ok());

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> unlink_seq{1000};
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Random rng(GetParam().escalation_threshold * 977 + w);
      for (int i = 0; i < 50; ++i) {
        auto* txn = db->Begin();
        const std::string name = "f" + std::to_string(rng.Uniform(12));
        Status st;
        if (rng.Bernoulli(0.5)) {
          // "Link": insert the linked entry (check_flag 0).
          st = db->Insert(txn, table, Row{Value(name), Value(int64_t{0}), Value(int64_t{w})});
        } else {
          // "Unlink": flip check_flag from 0 to a unique recovery id.
          auto n = db->Update(
              txn, table, {Pred::Eq("name", name), Pred::Eq("check_flag", 0)},
              {{"check_flag",
                sqldb::Operand(static_cast<int64_t>(unlink_seq.fetch_add(1)))}});
          st = n.ok() ? Status::OK() : n.status();
        }
        if (!st.ok() || rng.Bernoulli(0.3)) {
          (void)db->Rollback(txn);
        } else {
          (void)db->Commit(txn);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Invariant: at most one linked (check_flag 0) entry per name.
  auto* check = db->Begin();
  auto rows = db->Select(check, table, {Pred::Eq("check_flag", 0)});
  ASSERT_TRUE(rows.ok());
  std::set<std::string> seen;
  for (const Row& r : *rows) {
    EXPECT_TRUE(seen.insert(r[0].as_string()).second)
        << "two linked entries for " << r[0].as_string();
  }
  ASSERT_TRUE(db->Commit(check).ok());
}

INSTANTIATE_TEST_SUITE_P(Configs, ConcurrentInvariant,
                         ::testing::Values(EngineConfig{false, 100000},
                                           EngineConfig{true, 100000},
                                           EngineConfig{false, 20},
                                           EngineConfig{true, 20}));

}  // namespace
}  // namespace datalinks
