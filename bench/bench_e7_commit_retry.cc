// E7 — §3.3/Fig 4: "The SQL commit processing does not acquire any new
// locks. ... On the other hand the DLFM uses the SQL interface to update
// the metadata and its state stored in its local database during commit
// processing. ... Since deadlocks are always possible when new locks are
// acquired, a retry logic is included in the commit processing and it keeps
// retrying until it succeeds."
//
// Rows: a concurrent commit storm with next-key locking ON (the hostile
// configuration) and OFF (production).  Measured: phase-2 commit/abort
// retries, and — crucially — that every transaction's outcome was applied
// exactly once despite the retries (lost_outcomes must be 0).
#include "bench_common.h"

namespace datalinks::bench {
namespace {

void RunCommitStorm(benchmark::State& state, bool next_key_locking) {
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.next_key_locking = next_key_locking;
    dopts.lock_timeout_micros = 30 * 1000;
    dopts.retry_backoff_micros = 500;
    dopts.copy_batch = 8;  // Copy daemon holds more archive-table locks per txn
    auto env = MakeEnv(dopts);
    constexpr int kClients = 8;
    constexpr int kOps = 20;
    Precreate(env.get(), "c", kClients * kOps * 2);

    // Each transaction replaces its previous file: the phase-2 commit then
    // has real multi-lock work (insert the archive entry, physically delete
    // the unlinked File-table row, retire the Transaction-table row).
    std::atomic<int> next{0};
    WorkloadResult r =
        RunClients(env.get(), kClients, kOps, [&](int w, int i, hostdb::HostSession* s) {
          const int k = next.fetch_add(1);
          Status st = s->Insert(env->table, {sqldb::Value(int64_t{k}),
                                             sqldb::Value("dlfs://srv1/c" + std::to_string(k))});
          if (!st.ok()) return false;
          if (i > 0) {
            // Unlink a file this client linked earlier (delete its row).
            auto n = s->Delete(env->table,
                               {sqldb::Pred::Eq("id", int64_t{k - kClients + (w % 2)})});
            if (!n.ok()) return false;
          }
          return true;
        });

    // Verify no outcome was lost: despite all the phase-2 retries, the host
    // table and the DLFM metadata must agree exactly — every host row's file
    // is linked, and no extra linked files exist.
    uint64_t mismatches = 0;
    uint64_t host_rows = 0;
    {
      auto s = env->host->OpenSession();
      (void)s->Begin();
      auto rows = s->Select(env->table, {});
      if (rows.ok()) {
        host_rows = rows->size();
        for (const auto& row : *rows) {
          auto url = hostdb::ParseDatalinkUrl(row[1].as_string());
          if (!url.ok() || !env->dlfm->UpcallIsLinked(url->path)) ++mismatches;
        }
      }
      (void)s->Commit();
    }
    uint64_t linked_total = 0;
    for (int k = 0; k < next.load(); ++k) {
      if (env->dlfm->UpcallIsLinked("c" + std::to_string(k))) ++linked_total;
    }
    state.counters["commit_retries"] =
        static_cast<double>(env->dlfm->counters().commit_retries.load());
    state.counters["abort_retries"] =
        static_cast<double>(env->dlfm->counters().abort_retries.load());
    state.counters["committed"] = static_cast<double>(r.committed);
    state.counters["lost_outcomes"] =
        static_cast<double>(mismatches + (linked_total > host_rows ? linked_total - host_rows
                                                                   : host_rows - linked_total));
    state.counters["txn_per_min"] =
        60.0 * static_cast<double>(r.committed) / r.elapsed_seconds;
  }
}

void BM_CommitStormNextKeyOn(benchmark::State& state) { RunCommitStorm(state, true); }
void BM_CommitStormNextKeyOff(benchmark::State& state) { RunCommitStorm(state, false); }

BENCHMARK(BM_CommitStormNextKeyOn)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_CommitStormNextKeyOff)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e7_commit_retry);
