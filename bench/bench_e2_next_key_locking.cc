// E2 — §3.2.1/§4: "we have multiple indexes on some of frequently accessed
// tables, the next key locking feature results in deadlocks frequently when
// multiple datalink applications are running concurrently.  To maintain
// high performance while avoid such deadlocks, we turned off the next key
// locking in the DLFM database."
//
// Rows: identical concurrent link/unlink churn against the DLFM with
// next-key locking ON vs OFF; the comparison is the deadlock+timeout count
// and the achieved throughput.
#include "bench_common.h"

namespace datalinks::bench {
namespace {

void RunChurn(benchmark::State& state, bool next_key_locking) {
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.next_key_locking = next_key_locking;
    dopts.lock_timeout_micros = 100 * 1000;
    auto env = MakeEnv(dopts);
    constexpr int kFiles = 120;
    constexpr int kClients = 8;
    constexpr int kOps = 25;
    Precreate(env.get(), "churn", kFiles);

    WorkloadResult r =
        RunClients(env.get(), kClients, kOps, [&](int w, int i, hostdb::HostSession* s) {
          Random rng(static_cast<uint64_t>(w) * 104729 + i);
          // Each transaction links or unlinks a couple of files with nearby
          // names — adjacent keys in the File table's several indexes.
          for (int op = 0; op < 2; ++op) {
            const int64_t k = static_cast<int64_t>(rng.Uniform(kFiles));
            const std::string url = "dlfs://srv1/churn" + std::to_string(k);
            if (rng.Bernoulli(0.5)) {
              Status st = s->Insert(env->table, {sqldb::Value(k * 1000 + w), sqldb::Value(url)});
              if (st.IsTransactionFatal() || st.IsAborted()) return false;
            } else {
              auto n = s->Delete(env->table, {sqldb::Pred::Eq("clip", url)});
              if (!n.ok() &&
                  (n.status().IsTransactionFatal() || n.status().IsAborted())) {
                return false;
              }
            }
          }
          return true;
        });

    state.counters["deadlocks"] = static_cast<double>(r.deadlocks);
    state.counters["timeouts"] = static_cast<double>(r.timeouts);
    state.counters["deadlocks_per_100txn"] =
        100.0 * static_cast<double>(r.deadlocks + r.timeouts) /
        static_cast<double>(r.committed + r.rolled_back);
    state.counters["txn_per_min"] =
        60.0 * static_cast<double>(r.committed) / r.elapsed_seconds;
  }
}

void BM_NextKeyLockingOn(benchmark::State& state) { RunChurn(state, true); }
void BM_NextKeyLockingOff(benchmark::State& state) { RunChurn(state, false); }

BENCHMARK(BM_NextKeyLockingOn)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_NextKeyLockingOff)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e2_next_key_locking);
