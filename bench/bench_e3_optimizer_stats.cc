// E3 — §3.2.1/§4: the cost-based optimizer "does not take locking cost
// (concurrent accesses) into account"; with small/default catalog
// statistics it picks a table scan for the File table even though indexes
// exist, which "can cause havoc ... causing the lock timeouts and deadlocks
// and reducing the throughput of the concurrent workload".  The fix is
// hand-crafting the statistics before the statements are bound.
//
// Rows: the same concurrent link/unlink workload with hand-crafted stats ON
// (index plans) vs OFF (default stats -> table-scan plans); the comparison
// is throughput, lock failures, and the access-path counters.
#include "bench_common.h"

namespace datalinks::bench {
namespace {

void RunStatsConfig(benchmark::State& state, bool hand_crafted) {
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.hand_crafted_stats = hand_crafted;
    dopts.next_key_locking = false;
    dopts.lock_timeout_micros = 100 * 1000;
    auto env = MakeEnv(dopts);
    constexpr int kClients = 8;
    constexpr int kOps = 20;
    Precreate(env.get(), "f", kClients * kOps + 64);

    // Seed the File table so the scans have rows to lock.
    {
      auto s = env->host->OpenSession();
      for (int k = 0; k < 64; ++k) {
        (void)s->Begin();
        (void)s->Insert(env->table,
                        {sqldb::Value(int64_t{100000 + k}),
                         sqldb::Value("dlfs://srv1/f" + std::to_string(kClients * kOps + k))});
        (void)s->Commit();
      }
    }

    const auto db_before = env->dlfm->local_db()->stats();
    std::atomic<int> next{0};
    WorkloadResult r =
        RunClients(env.get(), kClients, kOps, [&](int, int, hostdb::HostSession* s) {
          const int k = next.fetch_add(1);
          return s
              ->Insert(env->table, {sqldb::Value(int64_t{k}),
                                    sqldb::Value("dlfs://srv1/f" + std::to_string(k))})
              .ok();
        });
    const auto db_after = env->dlfm->local_db()->stats();

    state.counters["links_per_min"] =
        60.0 * static_cast<double>(r.committed) / r.elapsed_seconds;
    state.counters["deadlocks"] = static_cast<double>(r.deadlocks);
    state.counters["timeouts"] = static_cast<double>(r.timeouts);
    state.counters["table_scans"] =
        static_cast<double>(db_after.table_scans - db_before.table_scans);
    state.counters["index_scans"] =
        static_cast<double>(db_after.index_scans - db_before.index_scans);
    state.counters["rows_scanned"] =
        static_cast<double>(db_after.rows_scanned - db_before.rows_scanned);
  }
}

void BM_HandCraftedStats(benchmark::State& state) { RunStatsConfig(state, true); }
void BM_DefaultStats(benchmark::State& state) { RunStatsConfig(state, false); }

BENCHMARK(BM_HandCraftedStats)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_DefaultStats)->Unit(benchmark::kMillisecond)->Iterations(1);

// The §4 watchdog: a user-issued runstats clobbers the hand-crafted values;
// the DLFM detects and repairs.  Measured: plans before/after repair.
void BM_StatsWatchdog(benchmark::State& state) {
  for (auto _ : state) {
    auto env = MakeEnv();
    auto* db = env->dlfm->local_db();
    (void)db->RunStats(env->dlfm->repo().file_table());  // clobber
    const bool clobbered = env->dlfm->repo().StatsLookClobbered();
    (void)env->dlfm->CheckAndRepairStats();
    state.counters["clobber_detected"] = clobbered ? 1 : 0;
    state.counters["repaired"] =
        env->dlfm->repo().StatsLookClobbered() ? 0 : 1;
    state.counters["rebinds"] =
        static_cast<double>(env->dlfm->counters().stats_watchdog_rebinds.load());
  }
}
BENCHMARK(BM_StatsWatchdog)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e3_optimizer_stats);
