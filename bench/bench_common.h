// Shared environment for the DLFM experiment benches (E1..E9).
//
// Each bench binary reproduces one quantified claim or lesson from the
// paper (see DESIGN.md §4 and EXPERIMENTS.md).  Numbers are reported as
// google-benchmark counters so `for b in build/bench/*; do $b; done`
// regenerates every row.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_server.h"
#include "common/random.h"
#include "dlff/filter.h"
#include "dlfm/server.h"
#include "fsim/file_server.h"
#include "hostdb/host_database.h"

namespace datalinks::bench {

/// A complete DataLinks deployment: one host database, one DLFM, one file
/// server with DLFF, one archive server.
struct Env {
  std::unique_ptr<fsim::FileServer> fs;
  std::unique_ptr<archive::ArchiveServer> archive;
  std::unique_ptr<dlfm::DlfmServer> dlfm;
  std::unique_ptr<dlff::FileSystemFilter> filter;
  std::unique_ptr<hostdb::HostDatabase> host;
  sqldb::TableId table = 0;

  ~Env() {
    host.reset();
    if (dlfm) dlfm->Stop();
  }
};

inline std::unique_ptr<Env> MakeEnv(dlfm::DlfmOptions dopts = {},
                                    hostdb::HostOptions hopts = {},
                                    std::shared_ptr<sqldb::DurableStore> durable = {}) {
  auto env = std::make_unique<Env>();
  dopts.server_name = "srv1";
  env->fs = std::make_unique<fsim::FileServer>("srv1");
  env->archive = std::make_unique<archive::ArchiveServer>();
  env->dlfm = std::make_unique<dlfm::DlfmServer>(dopts, env->fs.get(), env->archive.get(),
                                                 std::move(durable));
  if (!env->dlfm->Start().ok()) std::abort();
  env->filter = std::make_unique<dlff::FileSystemFilter>(
      env->fs.get(), dlff::TokenAuthority(hopts.token_secret));
  auto* dlfm_ptr = env->dlfm.get();
  env->filter->SetUpcall([dlfm_ptr](const std::string& p) { return dlfm_ptr->UpcallIsLinked(p); });
  env->filter->Attach();
  env->host = std::make_unique<hostdb::HostDatabase>(hopts);
  env->host->RegisterDlfm("srv1", env->dlfm->listener());
  auto table = env->host->CreateTable(
      "media",
      {hostdb::ColumnSpec{"id", sqldb::ValueType::kInt, false, false, {}, false},
       hostdb::ColumnSpec{"clip", sqldb::ValueType::kString, true, true,
                          dlfm::AccessControl::kFull, /*recovery=*/false}});
  if (!table.ok()) std::abort();
  env->table = *table;
  // Index + statistics so host-side point predicates use index scans (the
  // host database is assumed competently tuned; the experiments target the
  // DLFM's local database).
  if (!env->host->db()->CreateIndex(sqldb::IndexDef{"ux_media_id", *table, {0}, true}).ok()) {
    std::abort();
  }
  auto id_ix = env->host->db()->IndexByName(*table, "ux_media_id");
  sqldb::TableStats stats;
  stats.cardinality = 1000000;
  stats.index_distinct[*id_ix] = 1000000;
  env->host->db()->SetTableStats(*table, stats);
  return env;
}

inline void Precreate(Env* env, const std::string& prefix, int n) {
  for (int i = 0; i < n; ++i) {
    (void)env->fs->CreateFile(prefix + std::to_string(i), "alice", 0644, "x");
  }
}

/// Result of a multi-client host-session workload.
struct WorkloadResult {
  uint64_t committed = 0;
  uint64_t rolled_back = 0;
  double elapsed_seconds = 0;
  uint64_t deadlocks = 0;  // in the DLFM's local database
  uint64_t timeouts = 0;
};

/// Run `clients` concurrent host sessions, each performing `ops_per_client`
/// transactions produced by `op(worker, i, session)`.  Returns rates and the
/// DLFM lock-failure counters accumulated during the run.
template <typename OpFn>
WorkloadResult RunClients(Env* env, int clients, int ops_per_client, OpFn op) {
  const auto before = env->dlfm->local_db()->lock_manager().stats();
  std::atomic<uint64_t> committed{0}, rolled_back{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int w = 0; w < clients; ++w) {
    threads.emplace_back([&, w] {
      auto session = env->host->OpenSession();
      for (int i = 0; i < ops_per_client; ++i) {
        if (!session->Begin().ok()) continue;
        if (op(w, i, session.get()) && session->Commit().ok()) {
          committed.fetch_add(1);
        } else if (session->in_transaction()) {
          (void)session->Rollback();
          rolled_back.fetch_add(1);
        } else {
          rolled_back.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  const auto after = env->dlfm->local_db()->lock_manager().stats();

  WorkloadResult r;
  r.committed = committed.load();
  r.rolled_back = rolled_back.load();
  r.elapsed_seconds = std::chrono::duration<double>(end - start).count();
  r.deadlocks = after.deadlocks - before.deadlocks;
  r.timeouts = after.timeouts - before.timeouts;
  return r;
}

}  // namespace datalinks::bench

/// Drop-in replacement for BENCHMARK_MAIN() that always produces a
/// machine-readable result file: unless the caller already passed
/// --benchmark_out, the binary writes google-benchmark's JSON report to
/// BENCH_<name>.json in $DLX_BENCH_OUT_DIR (or the working directory).
/// Console output is unchanged.
#define DLX_BENCH_MAIN(name)                                                  \
  int main(int argc, char** argv) {                                           \
    std::vector<char*> args(argv, argv + argc);                               \
    bool has_out = false;                                                     \
    for (int i = 1; i < argc; ++i) {                                          \
      if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true; \
    }                                                                         \
    std::string out_flag, fmt_flag = "--benchmark_out_format=json";           \
    if (!has_out) {                                                           \
      const char* dir = std::getenv("DLX_BENCH_OUT_DIR");                     \
      out_flag = std::string("--benchmark_out=") +                            \
                 (dir != nullptr ? std::string(dir) + "/" : std::string()) +  \
                 "BENCH_" #name ".json";                                      \
      args.push_back(const_cast<char*>(out_flag.c_str()));                    \
      args.push_back(const_cast<char*>(fmt_flag.c_str()));                    \
    }                                                                         \
    int nargs = static_cast<int>(args.size());                                \
    benchmark::Initialize(&nargs, args.data());                               \
    if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1; \
    benchmark::RunSpecifiedBenchmarks();                                      \
    benchmark::Shutdown();                                                    \
    return 0;                                                                 \
  }
