// E4 — §4: "lock escalation in any of the metadata tables usually brings
// the system to its knees. ... applications should issue commit frequently
// to avoid holding large number of locks and lock list size should be set
// sufficiently large to avoid forced lock escalation."
//
// Rows: a concurrent link workload while a "big reader" transaction scans
// the File table under different escalation thresholds.  A low threshold
// escalates the reader to a table lock, stalling every writer (timeouts,
// throughput collapse); a generous threshold keeps granular locks.
#include "bench_common.h"

#include "sqldb/database.h"

namespace datalinks::bench {
namespace {

void RunEscalationConfig(benchmark::State& state, size_t threshold) {
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.lock_escalation_threshold = threshold;
    dopts.lock_timeout_micros = 60 * 1000;
    auto env = MakeEnv(dopts);
    constexpr int kClients = 6;
    constexpr int kOps = 15;
    Precreate(env.get(), "e", kClients * kOps + 200);

    // Preload 200 linked files so the scanner holds many row locks.
    {
      auto s = env->host->OpenSession();
      for (int k = 0; k < 200; ++k) {
        (void)s->Begin();
        (void)s->Insert(env->table,
                        {sqldb::Value(int64_t{500000 + k}),
                         sqldb::Value("dlfs://srv1/e" + std::to_string(kClients * kOps + k))});
        (void)s->Commit();
      }
    }

    // The "big" transaction: an RS scan over the File table in the DLFM's
    // local database (a reporting/monitoring query holding row locks).
    std::atomic<bool> stop{false};
    std::thread scanner([&] {
      auto* db = env->dlfm->local_db();
      while (!stop.load()) {
        auto* t = db->Begin(sqldb::Isolation::kRS);
        (void)db->Select(t, env->dlfm->repo().file_table(), {});
        // Hold the (possibly escalated) locks for a while before commit.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        (void)db->Commit(t);
      }
    });

    std::atomic<int> next{0};
    WorkloadResult r =
        RunClients(env.get(), kClients, kOps, [&](int, int, hostdb::HostSession* s) {
          const int k = next.fetch_add(1);
          return s
              ->Insert(env->table, {sqldb::Value(int64_t{k}),
                                    sqldb::Value("dlfs://srv1/e" + std::to_string(k))})
              .ok();
        });
    stop.store(true);
    scanner.join();

    const auto ls = env->dlfm->local_db()->lock_manager().stats();
    state.counters["links_per_min"] =
        60.0 * static_cast<double>(r.committed) / r.elapsed_seconds;
    state.counters["committed"] = static_cast<double>(r.committed);
    state.counters["rolled_back"] = static_cast<double>(r.rolled_back);
    state.counters["timeouts"] = static_cast<double>(r.timeouts);
    state.counters["escalations"] = static_cast<double>(ls.escalations);
  }
}

// Threshold 50 < 200 preloaded rows: every scan escalates to a table lock.
void BM_EscalationForced(benchmark::State& state) { RunEscalationConfig(state, 50); }
// Generous lock list: no escalation, writers coexist with the scanner.
void BM_EscalationAvoided(benchmark::State& state) { RunEscalationConfig(state, 100000); }

BENCHMARK(BM_EscalationForced)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_EscalationAvoided)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e4_lock_escalation);
