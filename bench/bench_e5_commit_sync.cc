// E5 — §4: "commit transaction API must be synchronous with respect to host
// database.  Desire was to release the database locks on the host DB2 side
// while DLFM is doing the commit processing.  However, this could lead to a
// distributed deadlock between host database and DLFM" — the T1/T11/T2
// cycle, invisible to both lock managers, which persists through T1's
// phase-2 lock-timeout retries for as long as T2 lives.
//
// Staged schedule (the cycle's three edges, made deterministic):
//   1. T1 (session A) commits.  In asynchronous mode the host returns to
//      the application while the child agent is still doing T1's commit
//      processing (a configurable phase-2 start delay widens this window —
//      the paper's "has not issued msg receive" state).
//   2. During that window a DLFM-side transaction T2 X-locks the File-table
//      row T1's phase-2 commit must read ("lock y" — staged directly on the
//      local database, standing in for T2's own forward link/unlink work).
//      T1's commit processing now times out and retries, §3.3-style.
//   3. T11 — session A's next transaction — X-locks host record x and then
//      issues a LinkFile, which blocks behind T1's unfinished commit
//      processing on the same connection.
//   4. T2's host-side agent asks for record x: blocked by T11.  Cycle:
//      T1-commit -> lock y (T2); T2-host -> record x (T11); T11 -> channel
//      (T1-commit).  Only T2's host lock timeout (60 s in the paper, scaled
//      here) breaks it.  In synchronous mode T11 cannot start before commit
//      processing finishes, so the cycle never forms.
//
// Rows: schedule wall time, T1's phase-2 retry count, and whether T2 had to
// be killed by the host lock timeout — async vs sync.
#include "bench_common.h"

namespace datalinks::bench {
namespace {

void RunSchedule(benchmark::State& state, bool synchronous_commit) {
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.lock_timeout_micros = 50 * 1000;   // DLFM-local waits
    dopts.retry_backoff_micros = 5 * 1000;
    dopts.phase2_start_delay_micros = 150 * 1000;  // child agent "busy" window
    hostdb::HostOptions hopts;
    hopts.synchronous_commit = synchronous_commit;
    hopts.lock_timeout_micros = 1200 * 1000;  // host waits much longer (60 s scaled)
    auto env = MakeEnv(dopts, hopts);

    auto plain = env->host->CreateTable(
        "plain", {hostdb::ColumnSpec{"id", sqldb::ValueType::kInt, false, false, {}, false},
                  hostdb::ColumnSpec{"v", sqldb::ValueType::kInt, false, false, {}, false}});
    if (!plain.ok()) std::abort();
    Precreate(env.get(), "file", 4);

    // Seed: record x and a committed link of file0 (T1 will unlink it).
    {
      auto s = env->host->OpenSession();
      (void)s->Begin();
      (void)s->Insert(*plain, {sqldb::Value(int64_t{1}), sqldb::Value(int64_t{0})});
      (void)s->Insert(env->table,
                      {sqldb::Value(int64_t{10}), sqldb::Value("dlfs://srv1/file0")});
      (void)s->Commit();
    }

    const uint64_t retries_before = env->dlfm->counters().commit_retries.load();
    const auto start = std::chrono::steady_clock::now();

    // T2's DLFM side: will lock "lock y" (file0's unlinked File-table row)
    // as soon as T1's prepare makes it visible.
    auto* ldb = env->dlfm->local_db();
    std::atomic<bool> t2_holds_y{false};
    std::atomic<bool> t2_release{false};
    std::thread t2_dlfm([&] {
      // Wait (lock-free, uncommitted read) for T1's prepare to publish the
      // unlinked row...
      while (true) {
        auto* peek = ldb->Begin(sqldb::Isolation::kUR);
        auto rows = ldb->Select(peek, env->dlfm->repo().file_table(),
                                {sqldb::Pred::Eq("name", "file0"), sqldb::Pred::Eq("state", "U")});
        (void)ldb->Commit(peek);
        if (rows.ok() && !rows->empty()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      // ...then X-lock it ("lock y") in T2's transaction.
      auto* t2 = ldb->Begin();
      while (true) {
        auto n = ldb->Update(t2, env->dlfm->repo().file_table(),
                             {sqldb::Pred::Eq("name", "file0"), sqldb::Pred::Eq("state", "U")},
                             {{"group_id", sqldb::Operand(int64_t{1})}});
        if (n.ok() && *n > 0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      t2_holds_y.store(true);
      while (!t2_release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(2));
      (void)ldb->Rollback(t2);  // T2 aborted -> lock y released
    });

    std::thread thread_a([&] {
      auto session_a = env->host->OpenSession();
      // T1: unlink file0; its phase-2 commit must read/delete the U row.
      (void)session_a->Begin();
      (void)session_a->Delete(env->table, {sqldb::Pred::Eq("id", int64_t{10})});
      (void)session_a->Commit();  // async: returns with phase 2 in flight
      // T11: lock record x, then issue a LinkFile on the same connection.
      (void)session_a->Begin();
      (void)session_a->Update(*plain, {sqldb::Pred::Eq("id", int64_t{1})},
                              {{"v", sqldb::Operand(int64_t{1})}});
      (void)session_a->Insert(env->table,
                              {sqldb::Value(int64_t{12}), sqldb::Value("dlfs://srv1/file2")});
      (void)session_a->Commit();
    });

    // T2's host side: once T2 holds lock y, it needs record x.
    while (!t2_holds_y.load()) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::this_thread::sleep_for(std::chrono::milliseconds(60));  // let T11 grab x (async)
    Status t2_host_status;
    {
      auto session_b = env->host->OpenSession();
      (void)session_b->Begin();
      t2_host_status = session_b->Update(*plain, {sqldb::Pred::Eq("id", int64_t{1})},
                                         {{"v", sqldb::Operand(int64_t{2})}})
                           .status();
      if (t2_host_status.ok()) {
        (void)session_b->Commit();
      } else {
        (void)session_b->Rollback();  // host lock timeout broke the cycle
      }
    }
    t2_release.store(true);  // T2's abort releases lock y at the DLFM
    t2_dlfm.join();
    thread_a.join();
    const auto end = std::chrono::steady_clock::now();

    state.counters["elapsed_ms"] =
        std::chrono::duration<double, std::milli>(end - start).count();
    state.counters["commit_retries"] = static_cast<double>(
        env->dlfm->counters().commit_retries.load() - retries_before);
    state.counters["t2_broken_by_timeout"] = t2_host_status.ok() ? 0 : 1;
  }
}

void BM_AsynchronousCommit(benchmark::State& state) { RunSchedule(state, false); }
void BM_SynchronousCommit(benchmark::State& state) { RunSchedule(state, true); }

BENCHMARK(BM_AsynchronousCommit)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SynchronousCommit)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e5_commit_sync);
