// E11 — crash-point fault injection overhead.  The fail-point hooks added
// for the crash matrix sit directly on the 2PC hot path (host commit,
// DLFM prepare/commit/abort, Copy and Delete Group daemons).  They must be
// cheap enough to compile into production builds: an unarmed hit is one
// mutex-protected map lookup.  Rows: end-to-end commit throughput with no
// injector armed vs armed-but-passing-through (worst production-shaped
// case: the armed map is non-empty on every hit), plus the raw per-hit
// cost of an unarmed fail point.
#include "bench_common.h"

#include "common/fault_injector.h"

namespace datalinks::bench {
namespace {

void RunCommitBatch(benchmark::State& state, bool armed) {
  for (auto _ : state) {
    state.PauseTiming();
    dlfm::DlfmOptions dopts;
    auto dlfm_fault = std::make_shared<FaultInjector>();
    dopts.fault = dlfm_fault;
    hostdb::HostOptions hopts;
    auto host_fault = std::make_shared<FaultInjector>();
    hopts.fault = host_fault;
    auto env = MakeEnv(dopts, hopts);
    constexpr int kOps = 200;
    Precreate(env.get(), "f", kOps);
    if (armed) {
      // Armed on the hottest points but never firing (skip budget never
      // runs out): measures lookup + spec bookkeeping, not injected faults.
      FaultInjector::Spec spec;
      spec.skip = 1 << 30;
      host_fault->Arm(failpoints::kHostCommitAfterPrepare, spec);
      dlfm_fault->Arm(failpoints::kDlfmCommitAttempt, spec);
    }
    auto session = env->host->OpenSession();
    state.ResumeTiming();
    for (int i = 0; i < kOps; ++i) {
      if (!session->Begin().ok()) std::abort();
      Status st = session->Insert(
          env->table, {sqldb::Value(int64_t{i}),
                       sqldb::Value("dlfs://srv1/f" + std::to_string(i))});
      if (!st.ok() || !session->Commit().ok()) std::abort();
    }
    state.PauseTiming();
    state.counters["commits"] = static_cast<double>(kOps);
    session.reset();
    env.reset();
    state.ResumeTiming();
  }
}

void BM_CommitsUnarmed(benchmark::State& state) { RunCommitBatch(state, false); }
void BM_CommitsArmedPassThrough(benchmark::State& state) { RunCommitBatch(state, true); }

BENCHMARK(BM_CommitsUnarmed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CommitsArmedPassThrough)->Unit(benchmark::kMillisecond);

void BM_HitUnarmedPoint(benchmark::State& state) {
  FaultInjector inj;
  for (auto _ : state) {
    auto hit = inj.Hit(failpoints::kHostCommitBeforePhase2);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_HitUnarmedPoint);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e11_failpoint_overhead);
