// E6 — §4: "Load and reconcile utilities tend to run for a long time and
// involve large number of link/unlink operations. ... there is potential
// for running out of system resources such as log file ... we put
// intelligence in DLFM to recognize such transactions and to do local
// commit after finishing processing of each piece."
//
// Rows: a bulk-load of N links through one host transaction against a DLFM
// whose local database has a small WAL.  Batch size 0 (one monolithic local
// transaction) exhausts the log; utility mode with periodic local commits
// (the paper's fix) completes.  Also the delete-group variant: unlinking a
// large group in one local transaction vs the daemon's batched commits.
#include "bench_common.h"

namespace datalinks::bench {
namespace {

constexpr int kFiles = 600;

void RunLoad(benchmark::State& state, bool utility_mode, size_t batch) {
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.log_capacity_bytes = 48 * 1024;  // small WAL: long txns overflow it
    dopts.commit_batch_size = batch;
    auto env = MakeEnv(dopts);
    Precreate(env.get(), "load", kFiles);

    const auto start = std::chrono::steady_clock::now();
    auto s = env->host->OpenSession();
    s->set_utility(utility_mode);
    Status st = s->Begin();
    int linked = 0;
    for (int k = 0; k < kFiles && st.ok(); ++k) {
      st = s->Insert(env->table, {sqldb::Value(int64_t{k}),
                                  sqldb::Value("dlfs://srv1/load" + std::to_string(k))});
      if (st.ok()) ++linked;
    }
    if (st.ok()) st = s->Commit();
    if (!st.ok() && s->in_transaction()) (void)s->Rollback();
    const auto end = std::chrono::steady_clock::now();

    state.counters["completed"] = st.ok() ? 1 : 0;
    state.counters["log_full"] = st.IsLogFull() || st.IsAborted() ? 1 : 0;
    state.counters["links_done"] = linked;
    state.counters["batched_local_commits"] =
        static_cast<double>(env->dlfm->counters().batched_local_commits.load());
    state.counters["elapsed_ms"] =
        std::chrono::duration<double, std::milli>(end - start).count();
  }
}

void BM_LoadMonolithic(benchmark::State& state) {
  RunLoad(state, /*utility_mode=*/false, /*batch=*/100);
}
void BM_LoadUtilityBatch50(benchmark::State& state) { RunLoad(state, true, 50); }
void BM_LoadUtilityBatch200(benchmark::State& state) { RunLoad(state, true, 200); }

BENCHMARK(BM_LoadMonolithic)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LoadUtilityBatch50)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LoadUtilityBatch200)->Unit(benchmark::kMillisecond)->Iterations(1);

// Delete-group daemon: "if large number of files are linked under one group
// then unlinking them in single local DB2 transaction can cause the DB2 log
// full error condition.  So we issue commits to local DB2 periodically
// after processing every N records."
void BM_DeleteGroupBatched(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.log_capacity_bytes = 256 * 1024;
    dopts.commit_batch_size = batch;
    auto env = MakeEnv(dopts);
    constexpr int kGroupFiles = 300;
    Precreate(env.get(), "grp", kGroupFiles);
    {
      auto s = env->host->OpenSession();
      s->set_utility(true);
      (void)s->Begin();
      for (int k = 0; k < kGroupFiles; ++k) {
        (void)s->Insert(env->table, {sqldb::Value(int64_t{k}),
                                     sqldb::Value("dlfs://srv1/grp" + std::to_string(k))});
      }
      (void)s->Commit();
    }
    const uint64_t commits_before = env->dlfm->counters().batched_local_commits.load();
    const auto start = std::chrono::steady_clock::now();
    {
      auto s = env->host->OpenSession();
      (void)s->Begin();
      (void)s->DropTable(env->table);
      (void)s->Commit();
    }
    Status drained = env->dlfm->WaitGroupWorkDrained(30 * 1000 * 1000);
    const auto end = std::chrono::steady_clock::now();
    state.counters["group_drained"] = drained.ok() ? 1 : 0;
    state.counters["daemon_local_commits"] = static_cast<double>(
        env->dlfm->counters().batched_local_commits.load() - commits_before);
    state.counters["elapsed_ms"] =
        std::chrono::duration<double, std::milli>(end - start).count();
  }
}
BENCHMARK(BM_DeleteGroupBatched)
    ->Arg(25)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e6_batched_commit);
