// E15 — paged storage under memory pressure: buffer-pool hit ratio,
// eviction behaviour, and cold-vs-warm scan cost.
//
// The engine stores heap rows and index nodes on fixed-size pages behind a
// clock-eviction buffer pool (DESIGN.md §9).  This bench loads a table
// several times larger than the pool, then measures three regimes:
//   1. cold sequential scan — every heap page faults in and evicts another
//      (the pool degrades to streaming I/O, as it should);
//   2. a re-scan — still bigger than the pool, so eviction keeps running;
//   3. a hot-set point-read phase whose working set FITS the pool — after
//      one warming pass the hit ratio must be >90% (the acceptance bar;
//      clock eviction that thrashes the hot set shows up here).
//
// Args: {rows, pool_pages}.
//
// Counters:
//   hot_hit_ratio   = pool hits/(hits+misses) during the hot phase
//   evictions       = total frames evicted over the run (must be > 0)
//   pool_flushes    = dirty writebacks (checkpoint + eviction)
//   cold_scan_ms    = first full-table scan (faulting)
//   warm_scan_ms    = second full-table scan (still > pool, eviction-bound)
//   hot_reads_ps    = point reads/second in the hot phase
//
// Artifacts: BENCH_e15_buffer_pool.json (google-benchmark) and
// BENCH_e15_metrics.json (registry snapshot with the sqldb.pool.*
// counters) — inputs for tools/check_perf.py.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/random.h"
#include "sqldb/database.h"

namespace datalinks::bench {
namespace {

using namespace datalinks::sqldb;

void DumpRegistry(const metrics::Registry& reg, const std::string& file) {
  const char* dir = std::getenv("DLX_BENCH_OUT_DIR");
  const std::string path = (dir != nullptr ? std::string(dir) + "/" : std::string()) + file;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string json = reg.DumpJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

double ScanMillis(Database* db, TableId t, int expect_rows) {
  const auto start = std::chrono::steady_clock::now();
  Transaction* txn = db->Begin();
  auto rows = db->Select(txn, t, {});
  if (!rows.ok() || rows->size() != static_cast<size_t>(expect_rows)) std::abort();
  if (!db->Commit(txn).ok()) std::abort();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

void BM_BufferPool(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const size_t pool_pages = static_cast<size_t>(state.range(1));

  for (auto _ : state) {
    DatabaseOptions o;
    o.page_size_bytes = 1024;
    o.buffer_pool_pages = pool_pages;
    o.lock_timeout_micros = 5 * 1000 * 1000;
    o.metrics = std::make_shared<metrics::Registry>();
    auto db = std::move(Database::Open(o)).value();

    TableSchema schema;
    schema.name = "media";
    schema.columns = {{"id", ValueType::kInt, false}, {"url", ValueType::kString, false}};
    TableId t = *db->CreateTable(schema);
    if (!db->CreateIndex(IndexDef{"ux_id", t, {0}, true}).ok()) std::abort();
    const IndexId ix = *db->IndexByName(t, "ux_id");

    // Load: ~9 rows per 1 KiB page, so `rows` rows span rows/9 heap pages —
    // several times `pool_pages` for the default args.
    const std::string pad(100, 'x');
    for (int i = 0; i < rows; i += 20) {
      Transaction* txn = db->Begin();
      for (int j = i; j < i + 20 && j < rows; ++j) {
        if (!db->Insert(txn, t, {Value(int64_t{j}), Value(pad + std::to_string(j))}).ok()) {
          std::abort();
        }
      }
      if (!db->Commit(txn).ok()) std::abort();
    }
    TableStats stats;
    stats.cardinality = rows;
    stats.index_distinct[ix] = rows;
    db->SetTableStats(t, stats);

    const double cold_ms = ScanMillis(db.get(), t, rows);
    const double warm_ms = ScanMillis(db.get(), t, rows);

    // Hot phase: random point reads over a hot set sized to fit the pool
    // (~1/8 of the table), after one warming pass.
    const int hot_rows = rows / 8;
    constexpr int kHotReads = 5000;
    Random rng(42);
    Transaction* warm = db->Begin();
    for (int i = 0; i < hot_rows; ++i) {
      if (!db->Select(warm, t, {Pred::Eq("id", int64_t{i})}).ok()) std::abort();
    }
    if (!db->Commit(warm).ok()) std::abort();

    const BufferPool::Stats before = db->buffer_pool_stats();
    const auto hot_start = std::chrono::steady_clock::now();
    Transaction* hot = db->Begin();
    for (int i = 0; i < kHotReads; ++i) {
      const int64_t id = static_cast<int64_t>(rng.Uniform(hot_rows));
      auto r = db->Select(hot, t, {Pred::Eq("id", id)});
      if (!r.ok() || r->size() != 1) std::abort();
    }
    if (!db->Commit(hot).ok()) std::abort();
    const double hot_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - hot_start).count();
    const BufferPool::Stats after = db->buffer_pool_stats();

    const double hits = static_cast<double>(after.hits - before.hits);
    const double misses = static_cast<double>(after.misses - before.misses);
    state.counters["hot_hit_ratio"] = hits / std::max(1.0, hits + misses);
    state.counters["evictions"] = static_cast<double>(after.evictions);
    state.counters["pool_flushes"] = static_cast<double>(after.flushes);
    state.counters["cold_scan_ms"] = cold_ms;
    state.counters["warm_scan_ms"] = warm_ms;
    state.counters["hot_reads_ps"] = kHotReads / hot_secs;

    DumpRegistry(*o.metrics, "BENCH_e15_metrics.json");
  }
}

BENCHMARK(BM_BufferPool)
    ->Args({2000, 64})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e15_buffer_pool);
