// E1 — the paper's headline system-test numbers (abstract, §3.2.1, §5):
//   "we were able to run 100-client workload ... without much
//    deadlock/timeout problem. Also, the system achieves insert rate of
//    300 per minute and 150 updates per minute."
//
// Rows: client count sweep (1..100) for an insert (LinkFile) workload and
// an update (UnlinkFile+LinkFile) workload, reporting ops/minute and
// deadlock/timeout counts in the DLFM's local database.  The paper's
// production configuration is used: next-key locking OFF, hand-crafted
// statistics ON.
#include "bench_common.h"

namespace datalinks::bench {
namespace {

void BM_InsertWorkload(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto env = MakeEnv();
    Precreate(env.get(), "ins", clients * ops);
    std::atomic<int> next{0};
    WorkloadResult r = RunClients(env.get(), clients, ops, [&](int, int, hostdb::HostSession* s) {
      const int k = next.fetch_add(1);
      return s
          ->Insert(env->table, {sqldb::Value(int64_t{k}),
                                sqldb::Value("dlfs://srv1/ins" + std::to_string(k))})
          .ok();
    });
    state.counters["inserts_per_min"] = 60.0 * static_cast<double>(r.committed) /
                                        r.elapsed_seconds;
    state.counters["committed"] = static_cast<double>(r.committed);
    state.counters["deadlocks"] = static_cast<double>(r.deadlocks);
    state.counters["timeouts"] = static_cast<double>(r.timeouts);
  }
}
BENCHMARK(BM_InsertWorkload)
    ->Args({1, 40})
    ->Args({10, 12})
    ->Args({50, 4})
    ->Args({100, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_UpdateWorkload(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto env = MakeEnv();
    const int total = clients * ops;
    Precreate(env.get(), "old", total);
    Precreate(env.get(), "new", total);
    // Preload: every row starts linked to oldK.
    {
      auto s = env->host->OpenSession();
      for (int k = 0; k < total; ++k) {
        (void)s->Begin();
        (void)s->Insert(env->table, {sqldb::Value(int64_t{k}),
                                     sqldb::Value("dlfs://srv1/old" + std::to_string(k))});
        (void)s->Commit();
      }
    }
    std::atomic<int> next{0};
    // Update = unlink old file + link new file in one transaction (§3.2).
    WorkloadResult r = RunClients(env.get(), clients, ops, [&](int, int, hostdb::HostSession* s) {
      const int k = next.fetch_add(1);
      return s
          ->Update(env->table, {sqldb::Pred::Eq("id", int64_t{k})},
                   {{"clip", sqldb::Operand(std::string("dlfs://srv1/new" + std::to_string(k)))}})
          .ok();
    });
    state.counters["updates_per_min"] = 60.0 * static_cast<double>(r.committed) /
                                        r.elapsed_seconds;
    state.counters["committed"] = static_cast<double>(r.committed);
    state.counters["deadlocks"] = static_cast<double>(r.deadlocks);
    state.counters["timeouts"] = static_cast<double>(r.timeouts);
  }
}
BENCHMARK(BM_UpdateWorkload)
    ->Args({1, 40})
    ->Args({10, 12})
    ->Args({50, 4})
    ->Args({100, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Sustained soak at 100 clients (scaled stand-in for the 24-hour test):
// a mixed insert/update/delete workload; the claim under test is the
// *absence* of deadlock/timeout problems in the production configuration.
void BM_MixedSoak100Clients(benchmark::State& state) {
  for (auto _ : state) {
    auto env = MakeEnv();
    constexpr int kClients = 100;
    constexpr int kOps = 4;
    Precreate(env.get(), "mix", kClients * kOps * 2);
    std::atomic<int> next{0};
    WorkloadResult r =
        RunClients(env.get(), kClients, kOps, [&](int w, int i, hostdb::HostSession* s) {
          Random rng(static_cast<uint64_t>(w) * 7919 + i);
          const int k = next.fetch_add(1);
          const std::string url = "dlfs://srv1/mix" + std::to_string(k);
          if (!s->Insert(env->table, {sqldb::Value(int64_t{k}), sqldb::Value(url)}).ok()) {
            return false;
          }
          if (rng.Bernoulli(0.33)) {
            return s->Delete(env->table, {sqldb::Pred::Eq("id", int64_t{k})}).ok();
          }
          if (rng.Bernoulli(0.5)) {
            const std::string url2 = "dlfs://srv1/mix" + std::to_string(next.fetch_add(1));
            return s
                ->Update(env->table, {sqldb::Pred::Eq("id", int64_t{k})},
                         {{"clip", sqldb::Operand(url2)}})
                .ok();
          }
          return true;
        });
    state.counters["ops_per_min"] =
        60.0 * static_cast<double>(r.committed) / r.elapsed_seconds;
    state.counters["committed"] = static_cast<double>(r.committed);
    state.counters["rolled_back"] = static_cast<double>(r.rolled_back);
    state.counters["deadlocks"] = static_cast<double>(r.deadlocks);
    state.counters["timeouts"] = static_cast<double>(r.timeouts);
  }
}
BENCHMARK(BM_MixedSoak100Clients)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e1_client_workload);
