// E10 — engine scalability after breaking the global data latch (per-table
// shared latching) and adding WAL group commit.
//
// The paper's headline E1 run (100 concurrent clients sustained, §5)
// requires the *local database* to scale with concurrency; the seed engine
// scaled negatively (EXPERIMENTS.md E1: 390k inserts/min at 1 client,
// 117k at 100) because every DML serialized on one mutex and every
// committer forced the log alone.
//
// Two workload shapes, swept over 1/4/10/16/64/100 clients:
//  - disjoint: client k inserts only into table k — the common DLFM shape
//    (File vs. Transaction vs. Group table); per-table latches let these
//    proceed in parallel.
//  - same: every client inserts into one table — the worst case; group
//    commit is the only win available.
//
// Each Args line is {clients, log_latency_micros}.  log_latency=0 measures
// pure engine overhead; log_latency>0 models a log device with realistic
// write latency, where group commit amortizes the wait across every
// committer riding the leader's batch (the classic group-commit result —
// without it throughput is capped at 1/latency commits per second
// regardless of client count).
//
// Counters: ips = committed inserts/second; gc_batch = mean commit/abort
// records retired per durable append (> 1 proves coalescing);
// force_waits = committers that waited behind a leader; latch_xwait_ms =
// total time writers waited for exclusive table latches; latch_max_x =
// high-water mark of simultaneously held exclusive latches.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "sqldb/database.h"

namespace datalinks::bench {
namespace {

using namespace datalinks::sqldb;

constexpr int kTotalInserts = 3000;  // fixed work, divided among clients

void RunScalability(benchmark::State& state, bool disjoint) {
  const int clients = static_cast<int>(state.range(0));
  const int64_t log_latency = state.range(1);
  const int ops_per_client = kTotalInserts / clients;

  for (auto _ : state) {
    auto durable = std::make_shared<DurableStore>();
    durable->set_append_latency_micros(log_latency);
    DatabaseOptions opts;
    opts.next_key_locking = false;  // production configuration (§4)
    opts.metrics = std::make_shared<metrics::Registry>();
    auto dbr = Database::Open(opts, durable);
    if (!dbr.ok()) std::abort();
    auto db = std::move(dbr).value();

    const int ntables = disjoint ? clients : 1;
    std::vector<TableId> tables;
    for (int i = 0; i < ntables; ++i) {
      TableSchema s;
      s.name = "t" + std::to_string(i);
      s.columns = {{"id", ValueType::kInt, false}, {"payload", ValueType::kString, false}};
      tables.push_back(*db->CreateTable(s));
      if (!db->CreateIndex(IndexDef{"ix_t" + std::to_string(i), tables.back(), {0}, false})
               .ok()) {
        std::abort();
      }
    }
    const std::string payload(64, 'p');

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<uint64_t> committed{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int w = 0; w < clients; ++w) {
      threads.emplace_back([&, w] {
        const TableId table = tables[disjoint ? w : 0];
        for (int i = 0; i < ops_per_client; ++i) {
          Transaction* txn = db->Begin();
          const int64_t id = static_cast<int64_t>(w) * 1000000 + i;
          if (db->Insert(txn, table, {Value(id), Value(payload)}).ok() &&
              db->Commit(txn).ok()) {
            committed.fetch_add(1);
          } else {
            (void)db->Rollback(txn);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const DatabaseStats ds = db->stats();
    const WalStats ws = db->wal().stats();
    state.counters["ips"] = static_cast<double>(committed.load()) / secs;
    state.counters["gc_batch"] = ws.mean_commits_per_batch;
    state.counters["force_waits"] = static_cast<double>(ws.force_waits);
    state.counters["latch_xwait_ms"] =
        static_cast<double>(ds.latch_exclusive_waits_micros) / 1000.0;
    state.counters["latch_max_x"] = static_cast<double>(ds.latch_max_concurrent_exclusive);
    if (metrics::kEnabled) {
      // E13: the same numbers through the metrics registry, proving the
      // histograms agree with the hand-rolled stats structs.
      auto& reg = *opts.metrics;
      state.counters["wal_force_p95_us"] =
          static_cast<double>(reg.GetHistogram("sqldb.wal.force_latency_us")->p95());
      state.counters["latch_xwait_p95_us"] =
          static_cast<double>(reg.GetHistogram("sqldb.latch.exclusive_wait_us")->p95());
      // Snapshot of the final configuration's registry for the artifact
      // upload (overwritten per configuration; the last one wins, which is
      // the 100-client/500us run — the most interesting).
      const char* dir = std::getenv("DLX_BENCH_OUT_DIR");
      const std::string path =
          (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_e10_metrics.json";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        const std::string json = reg.DumpJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      }
    }
  }
}

void BM_DisjointTables(benchmark::State& state) { RunScalability(state, /*disjoint=*/true); }
void BM_SameTable(benchmark::State& state) { RunScalability(state, /*disjoint=*/false); }

// log_latency = 0: pure engine-overhead scaling.
// log_latency = 500us: a realistic log device; the group-commit regime.
BENCHMARK(BM_DisjointTables)
    ->Args({1, 0})->Args({4, 0})->Args({10, 0})->Args({16, 0})->Args({64, 0})->Args({100, 0})
    ->Args({1, 500})->Args({4, 500})->Args({10, 500})->Args({16, 500})->Args({64, 500})
    ->Args({100, 500})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_SameTable)
    ->Args({1, 0})->Args({4, 0})->Args({10, 0})->Args({16, 0})->Args({64, 0})->Args({100, 0})
    ->Args({1, 500})->Args({4, 500})->Args({10, 500})->Args({16, 500})->Args({64, 500})
    ->Args({100, 500})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e10_scalability);
