// E9 — §3.4: "Since the number of entries/records processed could
// potentially be very large, they are first stored in a temp table in the
// local database to reduce the number of messages between the host database
// and DLFM and the number of file scans."
//
// Rows: reconcile of a table with R datalink rows, per-row messages vs the
// paper's temp-table batching.  Measured: RPC messages and elapsed time.
#include "bench_common.h"

namespace datalinks::bench {
namespace {

void RunReconcile(benchmark::State& state, bool use_temp_table, size_t batch) {
  const int rows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeEnv();
    Precreate(env.get(), "r", rows);
    {
      auto s = env->host->OpenSession();
      s->set_utility(true);
      (void)s->Begin();
      for (int k = 0; k < rows; ++k) {
        (void)s->Insert(env->table, {sqldb::Value(int64_t{k}),
                                     sqldb::Value("dlfs://srv1/r" + std::to_string(k))});
      }
      (void)s->Commit();
    }
    // Introduce divergence so the reconcile has real work: drop a tenth of
    // the DLFM entries behind the system's back.
    {
      auto* db = env->dlfm->local_db();
      auto* t = db->Begin();
      for (int k = 0; k < rows; k += 10) {
        (void)db->Delete(t, env->dlfm->repo().file_table(),
                         {sqldb::Pred::Eq("name", "r" + std::to_string(k)),
                          sqldb::Pred::Eq("check_flag", 0)});
      }
      (void)db->Commit(t);
    }

    const auto start = std::chrono::steady_clock::now();
    auto report = env->host->Reconcile(env->table, use_temp_table, batch);
    const auto end = std::chrono::steady_clock::now();
    if (!report.ok()) std::abort();

    state.counters["messages"] = static_cast<double>(report->messages);
    state.counters["elapsed_ms"] =
        std::chrono::duration<double, std::milli>(end - start).count();
    state.counters["rows"] = rows;
    state.counters["repaired_orphans"] = static_cast<double>(rows / 10);
  }
}

void BM_ReconcilePerRow(benchmark::State& state) { RunReconcile(state, false, 1); }
void BM_ReconcileTempTable(benchmark::State& state) { RunReconcile(state, true, 128); }

BENCHMARK(BM_ReconcilePerRow)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_ReconcileTempTable)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e9_reconcile);
