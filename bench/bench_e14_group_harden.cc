// E14 — 2PC hot path: group harden at prepare, measured end to end.
//
// §3.4: at PREPARE the DLFM "hardens" the transaction — forces its local
// commit record to the log — so a host COMMIT decision can never be
// undone by a DLFM crash.  With one force per prepare, a log device with
// non-trivial write latency caps prepare throughput at 1/latency, exactly
// the pre-group-commit regime E10 measured for local committers.  This
// bench drives concurrent host transactions that each link one file (so
// every host commit runs the full 2PC round trip into the DLFM) and
// shows the prepare-side leader/follower coalescing: one durable force
// covers every harden whose commit LSN it subsumes.
//
// Args: {clients, dlfm_log_latency_micros}.
//
// Counters:
//   cps                = committed host transactions/second
//   harden_batches     = durable group-harden forces (leader runs)
//   harden_txns        = prepares that rode those forces
//   harden_batch_mean  = txns/batches (> 1 proves coalescing)
//   host_commit_p99_us = end-to-end host commit latency p99 (metrics)
//
// Artifacts: BENCH_e14_host_metrics.json / BENCH_e14_dlfm_metrics.json —
// full registry snapshots of the last configuration (100 clients), the
// inputs for the CI perf guard (tools/check_perf.py).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "common/metrics.h"

namespace datalinks::bench {
namespace {

constexpr int kTotalLinks = 600;  // fixed work, divided among clients

void DumpRegistry(const metrics::Registry& reg, const std::string& file) {
  const char* dir = std::getenv("DLX_BENCH_OUT_DIR");
  const std::string path = (dir != nullptr ? std::string(dir) + "/" : std::string()) + file;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string json = reg.DumpJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

void RunGroupHarden(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int64_t log_latency = state.range(1);
  const int ops_per_client = kTotalLinks / clients;

  for (auto _ : state) {
    auto durable = std::make_shared<sqldb::DurableStore>();
    durable->set_append_latency_micros(log_latency);
    auto env = MakeEnv({}, {}, durable);
    Precreate(env.get(), "file", clients * ops_per_client);

    auto& dreg = env->dlfm->metrics();
    const uint64_t batches0 = dreg.GetCounter("dlfm.prepare.group_harden_batches")->value();
    const uint64_t txns0 = dreg.GetCounter("dlfm.prepare.group_harden_txns")->value();

    const WorkloadResult r =
        RunClients(env.get(), clients, ops_per_client, [&](int w, int i, hostdb::HostSession* s) {
          const int64_t id = static_cast<int64_t>(w) * 1000000 + i;
          const std::string url =
              "dlfs://srv1/file" + std::to_string(w * ops_per_client + i);
          return s->Insert(env->table, {sqldb::Value(id), sqldb::Value(url)}).ok();
        });

    const double batches =
        static_cast<double>(dreg.GetCounter("dlfm.prepare.group_harden_batches")->value() -
                            batches0);
    const double txns = static_cast<double>(
        dreg.GetCounter("dlfm.prepare.group_harden_txns")->value() - txns0);
    state.counters["cps"] = static_cast<double>(r.committed) / r.elapsed_seconds;
    state.counters["rolled_back"] = static_cast<double>(r.rolled_back);
    state.counters["harden_batches"] = batches;
    state.counters["harden_txns"] = txns;
    state.counters["harden_batch_mean"] = batches > 0 ? txns / batches : 0.0;
    state.counters["host_commit_p99_us"] =
        env->host->metrics().GetHistogram("host.commit.latency_us")->p99();

    // Snapshots for the artifact upload + perf guard; last configuration
    // wins (100 clients — the contended regime the guard cares about).
    DumpRegistry(env->host->metrics(), "BENCH_e14_host_metrics.json");
    DumpRegistry(dreg, "BENCH_e14_dlfm_metrics.json");
  }
}

void BM_GroupHarden(benchmark::State& state) { RunGroupHarden(state); }

// 300us models the same class of log device as E10's 500us but leaves the
// host side (which shares one process here) headroom on a small CI box.
BENCHMARK(BM_GroupHarden)
    ->Args({1, 300})->Args({16, 300})->Args({64, 300})->Args({100, 300})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e14_group_harden);
