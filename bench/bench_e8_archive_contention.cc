// E8 — §3.4: "Because multiple indexes are defined on the Archive table and
// size of the Archive table is small (entry gets deleted as soon as it is
// archived), deadlocks were encountered between child agent and Copy Daemon
// while accessing the Archive table.  Those deadlocks were eliminated by
// disabling the next key locking feature in DLFM's local database."
//
// Rows: a link storm with the recovery option ON (child agents insert into
// dfm_archive at phase-2 commit) racing the Copy daemon (which deletes the
// entries as it archives), next-key locking ON vs OFF.  Measured: local
// deadlock/timeout counts, archive throughput.
#include "bench_common.h"

namespace datalinks::bench {
namespace {

void RunArchiveStorm(benchmark::State& state, bool next_key_locking) {
  for (auto _ : state) {
    dlfm::DlfmOptions dopts;
    dopts.next_key_locking = next_key_locking;
    dopts.lock_timeout_micros = 30 * 1000;
    dopts.copy_batch = 8;
    dopts.archive_latency_micros = 1500;  // ADSM store latency (simulated)

    auto env = std::make_unique<Env>();
    dopts.server_name = "srv1";
    env->fs = std::make_unique<fsim::FileServer>("srv1");
    env->archive = std::make_unique<archive::ArchiveServer>();
    env->dlfm = std::make_unique<dlfm::DlfmServer>(dopts, env->fs.get(), env->archive.get());
    if (!env->dlfm->Start().ok()) std::abort();
    hostdb::HostOptions hopts;
    env->host = std::make_unique<hostdb::HostDatabase>(hopts);
    env->host->RegisterDlfm("srv1", env->dlfm->listener());
    // Recovery option ON: every committed link enqueues an archive copy.
    auto table = env->host->CreateTable(
        "media",
        {hostdb::ColumnSpec{"id", sqldb::ValueType::kInt, false, false, {}, false},
         hostdb::ColumnSpec{"clip", sqldb::ValueType::kString, true, true,
                            dlfm::AccessControl::kNone, /*recovery=*/true}});
    if (!table.ok()) std::abort();
    env->table = *table;

    constexpr int kClients = 8;
    constexpr int kOps = 30;
    Precreate(env.get(), "a", kClients * kOps);
    std::atomic<int> next{0};
    WorkloadResult r =
        RunClients(env.get(), kClients, kOps, [&](int, int, hostdb::HostSession* s) {
          const int k = next.fetch_add(1);
          return s
              ->Insert(env->table, {sqldb::Value(int64_t{k}),
                                    sqldb::Value("dlfs://srv1/a" + std::to_string(k))})
              .ok();
        });
    Status drained = env->dlfm->WaitArchiveDrained(20 * 1000 * 1000);

    state.counters["deadlocks"] = static_cast<double>(r.deadlocks);
    state.counters["timeouts"] = static_cast<double>(r.timeouts);
    state.counters["links_per_min"] =
        60.0 * static_cast<double>(r.committed) / r.elapsed_seconds;
    state.counters["files_archived"] =
        static_cast<double>(env->dlfm->counters().files_archived.load());
    state.counters["archive_drained"] = drained.ok() ? 1 : 0;
    state.counters["commit_retries"] =
        static_cast<double>(env->dlfm->counters().commit_retries.load());
  }
}

void BM_ArchiveStormNextKeyOn(benchmark::State& state) { RunArchiveStorm(state, true); }
void BM_ArchiveStormNextKeyOff(benchmark::State& state) { RunArchiveStorm(state, false); }

BENCHMARK(BM_ArchiveStormNextKeyOn)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_ArchiveStormNextKeyOff)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e8_archive_contention);
