// E16 — sharded multi-DLFM scale-out over the socket transport.
//
// DESIGN.md §10: N DLFMs behind real TCP listeners, consistent-hash
// placement of file-server prefixes across the fleet, and a host commit
// path that prepares all touched shards in parallel and pipelines the
// phase-2 deliveries.  The claim under test is the scale-out one: for a
// disjoint-shard workload (every transaction links files on exactly one
// shard), adding shards must not inflate the host-commit tail — the
// acceptance band holds p99 at 8 shards within 2x of p99 at 2 shards.
//
// Each simulated client owns one file-server prefix ("vol<c>"), so the
// ring spreads clients across shards and no two shards ever appear in
// the same transaction.  Clients are multiplexed onto a fixed worker
// pool: 1k-10k sessions over tens of threads, all of a shard's
// conversations sharing that shard's one TCP connection (the stream
// multiplexing the transport exists to provide).
//
// Args: {shards, simulated_clients}.
//
// Counters:
//   cps                 = committed host transactions/second
//   committed           = transactions that committed (== clients when clean)
//   p99_commit_us       = host.commit.latency_us p99 for this configuration
//   p99_ratio_8s_over_2s = p99(8 shards)/p99(2 shards), emitted on the
//                          8-shard/10k-client row only (CI acceptance <= 2.0)
//
// Artifacts: BENCH_e16_host_metrics.json — host registry snapshot of the
// 8-shard/10k-client configuration (per-shard phase-1/phase-2 RTT
// histograms and prepare counters), input to tools/check_perf.py.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "hostdb/stats_aggregator.h"

namespace datalinks::bench {
namespace {

// Threads multiplexing the simulated clients.  Modest on purpose: the
// counter under guard is the host-commit p99, and heavy oversubscription
// on a small CI box would measure run-queue depth, not the commit path.
constexpr int kWorkers = 8;

/// A host database fronting `shards` DLFMs, each on its own ephemeral TCP
/// port, with ring placement on.  Mirrors the production topology: one
/// socket per shard, N conversations multiplexed over it.
struct ShardedEnv {
  std::unique_ptr<archive::ArchiveServer> archive;
  std::vector<std::unique_ptr<fsim::FileServer>> fs;
  std::vector<std::unique_ptr<dlfm::DlfmServer>> dlfms;
  std::unique_ptr<hostdb::HostDatabase> host;
  sqldb::TableId table = 0;

  ~ShardedEnv() {
    host.reset();
    for (auto& d : dlfms) d->Stop();
  }
};

std::unique_ptr<ShardedEnv> MakeShardedEnv(int shards, bool fleet_trace) {
  auto env = std::make_unique<ShardedEnv>();
  env->archive = std::make_unique<archive::ArchiveServer>();
  for (int i = 0; i < shards; ++i) {
    const std::string name = "srv" + std::to_string(i);
    env->fs.push_back(std::make_unique<fsim::FileServer>(name));
    dlfm::DlfmOptions opts;
    opts.server_name = name;
    opts.listen_port = 0;
    if (fleet_trace) {
      // Private ring, sized so the acceptance row's spans all survive:
      // ~1.25k disjoint-placement txns per shard x a handful of spans each
      // is well under 64k.  A lossy ring would show up as an incomplete
      // critical path in tools/dlfm_trace.py --check.
      opts.trace = std::make_shared<trace::TraceRing>(1 << 16);
    }
    auto d = std::make_unique<dlfm::DlfmServer>(opts, env->fs.back().get(),
                                                env->archive.get(), nullptr);
    if (!d->Start().ok() || d->socket_port() <= 0) std::abort();
    env->dlfms.push_back(std::move(d));
  }
  hostdb::HostOptions hopts;
  hopts.dbid = 1;
  hopts.shard_placement = true;
  if (fleet_trace) {
    // The host records ~6 spans per commit (begin, commit, per-shard
    // phase-1/phase-2, decision, ack) x 10k clients.
    hopts.trace = std::make_shared<trace::TraceRing>(1 << 18);
  }
  env->host = std::make_unique<hostdb::HostDatabase>(hopts);
  for (int i = 0; i < shards; ++i) {
    env->host->RegisterDlfm("srv" + std::to_string(i),
                            env->dlfms[i]->socket_listener());
  }
  auto table = env->host->CreateTable(
      "media",
      {hostdb::ColumnSpec{"id", sqldb::ValueType::kInt, false, false, {}, false},
       hostdb::ColumnSpec{"clip", sqldb::ValueType::kString, true, true,
                          dlfm::AccessControl::kFull, /*recovery=*/false}});
  if (!table.ok()) std::abort();
  env->table = *table;
  return env;
}

void DumpArtifact(const std::string& json, const std::string& file) {
  const char* dir = std::getenv("DLX_BENCH_OUT_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) + file;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

// p99 of the 2-shard/1k-client row, for the 8-vs-2 acceptance ratio.
// Benchmarks run in registration order, so the 2-shard row fills this
// before the 8-shard row reads it.
double g_p99_2shard_us = 0;

void RunMultiDlfm(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));

  // The acceptance row doubles as the fleet-trace source: private span
  // rings per shard plus the host's, stitched into one snapshot below.
  const bool fleet_trace = shards == 8 && clients == 10000;

  for (auto _ : state) {
    auto env = MakeShardedEnv(shards, fleet_trace);

    // Client c works under prefix "vol<c>"; create its file on the shard
    // the ring places that prefix on so the link upcall finds it.
    std::map<std::string, int> shard_index;
    for (int i = 0; i < shards; ++i) shard_index["srv" + std::to_string(i)] = i;
    for (int c = 0; c < clients; ++c) {
      const std::string prefix = "vol" + std::to_string(c);
      const int s = shard_index.at(env->host->ResolveServer(prefix));
      if (!env->fs[s]->CreateFile("f" + std::to_string(c), "alice", 0644, "x").ok()) {
        std::abort();
      }
    }

    // Warm every shard's TCP connection (the host dials lazily on first
    // use) so the sweep compares steady-state commit tails, not N-shard
    // dial storms: one throwaway linked insert per shard.
    {
      auto session = env->host->OpenSession();
      if (!session->Begin().ok()) std::abort();
      for (int i = 0; i < shards; ++i) {
        const std::string name = "warm" + std::to_string(i);
        if (!env->fs[i]->CreateFile(name, "alice", 0644, "x").ok()) std::abort();
        const std::string url = "dlfs://srv" + std::to_string(i) + "/" + name;
        if (!session->Insert(env->table,
                             {sqldb::Value(static_cast<int64_t>(-1 - i)),
                              sqldb::Value(url)}).ok()) {
          std::abort();
        }
      }
      if (!session->Commit().ok()) std::abort();
    }

    std::atomic<int> next{0};
    std::atomic<uint64_t> committed{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&] {
        for (int c = next.fetch_add(1); c < clients; c = next.fetch_add(1)) {
          auto session = env->host->OpenSession();
          if (!session->Begin().ok()) continue;
          const std::string url =
              "dlfs://vol" + std::to_string(c) + "/f" + std::to_string(c);
          if (session->Insert(env->table, {sqldb::Value(static_cast<int64_t>(c)),
                                           sqldb::Value(url)}).ok() &&
              session->Commit().ok()) {
            committed.fetch_add(1);
          } else if (session->in_transaction()) {
            (void)session->Rollback();
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    const double p99 =
        env->host->metrics().GetHistogram("host.commit.latency_us")->p99();
    state.counters["cps"] = static_cast<double>(committed.load()) / elapsed;
    state.counters["committed"] = static_cast<double>(committed.load());
    state.counters["p99_commit_us"] = p99;
    // The acceptance ratio is taken from the 10k-client rows: at 1k
    // samples p99 is the 10th-worst commit and run-queue jitter on a
    // small CI box swings it 2x run to run; at 10k it is the 100th-worst
    // and stable.
    if (shards == 2 && clients == 10000) g_p99_2shard_us = p99;
    if (shards == 8 && clients == 10000) {
      state.counters["p99_ratio_8s_over_2s"] =
          g_p99_2shard_us > 0 ? p99 / g_p99_2shard_us : 0.0;
      DumpArtifact(env->host->metrics().DumpJson(), "BENCH_e16_host_metrics.json");
      // Fleet snapshot: every shard's labeled metrics + span ring pulled
      // over the live socket transport, merged with the host's.  Input to
      // tools/dlfm_trace.py, which stitches per-transaction critical paths
      // and fails CI when paths are incomplete (--check).
      hostdb::StatsAggregator agg(env->host.get());
      auto fleet = agg.FleetSnapshotJson();
      if (!fleet.ok()) std::abort();
      DumpArtifact(*fleet, "BENCH_e16_fleet_snapshot.json");
      state.counters["trace_dropped_host"] =
          static_cast<double>(env->host->trace_ring().dropped());

      // Tracing-overhead probes for the perf guard.  `span_record_ns` is
      // the full cost of a traced SpanScope (mint + clock reads + ring
      // record); `span_noop_ns` is the untraced fast path — one
      // thread-local load — which is what every engine wait site pays when
      // the calling thread carries no trace.
      {
        constexpr int kProbes = 100000;
        trace::TraceRing probe_ring(1024);
        const auto clk = SystemClock::Instance();
        auto t0 = std::chrono::steady_clock::now();
        {
          trace::TraceContextScope tctx(1, 1, &probe_ring, clk.get(), "bench");
          for (int i = 0; i < kProbes; ++i) trace::SpanScope s("bench.span");
        }
        auto t1 = std::chrono::steady_clock::now();
        for (int i = 0; i < kProbes; ++i) trace::SpanScope s("bench.span");
        auto t2 = std::chrono::steady_clock::now();
        state.counters["span_record_ns"] =
            std::chrono::duration<double, std::nano>(t1 - t0).count() / kProbes;
        state.counters["span_noop_ns"] =
            std::chrono::duration<double, std::nano>(t2 - t1).count() / kProbes;
      }
    }
  }
}

void BM_MultiDlfm(benchmark::State& state) { RunMultiDlfm(state); }

// Shard sweep at 1k simulated clients for the scaling table, then the
// 10k-client acceptance pair: the 8-shard fleet absorbing 10x the
// conversation count over the same per-shard sockets, with commit p99
// held within 2x of the 2-shard configuration.
BENCHMARK(BM_MultiDlfm)
    ->Args({2, 1000})
    ->Args({4, 1000})
    ->Args({8, 1000})
    ->Args({16, 1000})
    ->Args({2, 10000})
    ->Args({8, 10000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datalinks::bench

DLX_BENCH_MAIN(e16_multi_dlfm);
